// Resource governance: memory budgets, deadlines, and cooperative
// cancellation for every pipeline.
//
// A compress or decode call becomes a bounded, abortable transaction by
// carrying a ResourceLimits through its config: a memory budget enforced
// by a thread-safe accounting arena (charged at the Matrix / NdArray /
// zlib allocation sites), an absolute deadline, and a shared CancelToken
// a client can trip from another thread. Pipeline entry points install a
// GovernorScope; every stage boundary and every parallel_for strip index
// then runs through a cooperative checkpoint, so abort latency is
// bounded even mid-stage and a tripped limit surfaces as the matching
// StatusCode (kResourceExhausted / kDeadlineExceeded / kCancelled).
//
// Decoders additionally run a *pre-flight admission check*: the
// header-claimed geometry is priced before any large allocation, so a
// zip-bomb archive claiming terabytes is rejected up front instead of
// discovered mid-allocation (docs/ROBUSTNESS.md).
//
// Design invariants:
//   * Limits never change output bytes — they bound whether a call
//     completes, not what it produces (the determinism suite runs with
//     limits enabled).
//   * Governors nest: a scope installed inside another (e.g. a future
//     serve-daemon request inside a process budget) charges and polls the
//     whole chain. An entry point whose limits are all-defaults installs
//     nothing, so chunked frames never shadow their container's governor.
//   * Ungoverned code pays one thread-local load per checkpoint/charge.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>

#include "util/annotated_mutex.h"
#include "util/error.h"

namespace dpz {

class CancelSource;

/// Read side of a cancellation flag. Default-constructed tokens are
/// empty (never cancelled); live tokens share their source's flag, so
/// one request_cancel() aborts every operation holding a copy.
class CancelToken {
 public:
  CancelToken() = default;

  /// True when this token is connected to a CancelSource.
  [[nodiscard]] bool valid() const noexcept { return flag_ != nullptr; }

  [[nodiscard]] bool cancel_requested() const noexcept {
    return flag_ != nullptr && flag_->load(std::memory_order_relaxed);
  }

 private:
  friend class CancelSource;
  explicit CancelToken(std::shared_ptr<const std::atomic<bool>> flag)
      : flag_(std::move(flag)) {}

  std::shared_ptr<const std::atomic<bool>> flag_;
};

/// Owner side of a cancellation flag: hand token() copies to operations,
/// call request_cancel() from any thread to abort them at their next
/// checkpoint. Copies share the flag.
class CancelSource {
 public:
  CancelSource() : flag_(std::make_shared<std::atomic<bool>>(false)) {}

  void request_cancel() noexcept {
    flag_->store(true, std::memory_order_relaxed);
  }
  [[nodiscard]] bool cancel_requested() const noexcept {
    return flag_->load(std::memory_order_relaxed);
  }
  [[nodiscard]] CancelToken token() const { return CancelToken(flag_); }

 private:
  std::shared_ptr<std::atomic<bool>> flag_;
};

/// Per-operation resource limits, threaded through DpzConfig /
/// ChunkedConfig / SharedBasisCodec, the C API (dpz_options) and the CLI
/// (--max-memory / --deadline-ms). All-defaults means ungoverned: no
/// governor is installed and every checkpoint is a no-op.
struct ResourceLimits {
  /// Peak accounted bytes the operation may hold; 0 = unlimited.
  std::uint64_t max_memory_bytes = 0;
  /// Absolute steady-clock deadline in nanoseconds (now_ns() units);
  /// 0 = none. Build relative deadlines with deadline_after_ms().
  std::int64_t deadline_ns = 0;
  /// Cooperative cancellation handle; empty = never cancelled.
  CancelToken cancel;

  [[nodiscard]] bool enabled() const noexcept {
    return max_memory_bytes != 0 || deadline_ns != 0 || cancel.valid();
  }

  /// Current steady-clock time in deadline_ns units.
  [[nodiscard]] static std::int64_t now_ns() noexcept;
  /// Deadline `ms` milliseconds from now (ms <= 0 yields "no deadline").
  [[nodiscard]] static std::int64_t deadline_after_ms(double ms) noexcept;
};

/// Thread-safe scoped memory accounting. charge() reserves bytes against
/// the budget and throws ResourceExhausted when the reservation does not
/// fit; release() returns it. A zero budget only accounts (in_use/peak)
/// without ever rejecting.
class MemoryArena {
 public:
  explicit MemoryArena(std::uint64_t budget_bytes)
      : budget_(budget_bytes) {}

  MemoryArena(const MemoryArena&) = delete;
  MemoryArena& operator=(const MemoryArena&) = delete;

  /// Reserves `bytes`; throws ResourceExhausted when it exceeds the
  /// remaining budget.
  void charge(std::uint64_t bytes);
  /// Returns a reservation made by charge().
  void release(std::uint64_t bytes) noexcept;

  [[nodiscard]] std::uint64_t budget() const noexcept { return budget_; }
  [[nodiscard]] std::uint64_t in_use() const;
  /// High-water mark of in_use() over the arena's lifetime.
  [[nodiscard]] std::uint64_t peak() const;

 private:
  const std::uint64_t budget_;
  mutable Mutex m_;
  std::uint64_t in_use_ DPZ_GUARDED_BY(m_) = 0;
  std::uint64_t peak_ DPZ_GUARDED_BY(m_) = 0;
};

/// One governed scope's enforcement state: the limits, their arena, and
/// the enclosing governor (nesting). Installed thread-locally by
/// GovernorScope and propagated to pool workers by parallel_for; reach
/// it through current_governor() / governed_poll(), not directly.
class ResourceGovernor
    : public std::enable_shared_from_this<ResourceGovernor> {
 public:
  ResourceGovernor(const ResourceLimits& limits,
                   std::shared_ptr<const ResourceGovernor> parent)
      : limits_(limits),
        arena_(limits.max_memory_bytes),
        parent_(std::move(parent)) {}

  /// Cooperative checkpoint: throws Cancelled / DeadlineExceeded when a
  /// limit anywhere on the governor chain has tripped. The first
  /// participant to observe a trip records the obs counter; later
  /// observers (other pool workers) just throw.
  void checkpoint() const;

  /// Pre-flight admission: throws ResourceExhausted (and counts
  /// obs admission_rejected) when `estimated_peak_bytes` exceeds any
  /// chain member's remaining budget. `what` names the archive kind for
  /// the error message.
  void admit(std::uint64_t estimated_peak_bytes, const char* what) const;

  /// Charges every arena on the chain; rolls back the partial charges
  /// and rethrows if an arena rejects.
  void charge(std::uint64_t bytes) const;
  void release(std::uint64_t bytes) const noexcept;

  [[nodiscard]] const ResourceLimits& limits() const noexcept {
    return limits_;
  }
  [[nodiscard]] const MemoryArena& arena() const noexcept { return arena_; }

 private:
  ResourceLimits limits_;
  mutable MemoryArena arena_;
  std::shared_ptr<const ResourceGovernor> parent_;
  /// Dedupes the cancelled/deadline obs counters: every worker polling a
  /// tripped governor throws, but exactly one reports the event.
  mutable std::atomic<bool> reported_{false};
};

/// The innermost governor installed on the calling thread, or nullptr
/// when the thread is ungoverned.
[[nodiscard]] const ResourceGovernor* current_governor() noexcept;

/// Shared handle to the current governor (what parallel_for publishes to
/// its workers); null when ungoverned.
[[nodiscard]] std::shared_ptr<const ResourceGovernor>
current_governor_shared();

/// Cooperative cancellation/deadline checkpoint: a no-op (one
/// thread-local load) when the calling thread is ungoverned.
inline void governed_poll() {
  const ResourceGovernor* g = current_governor();
  if (g != nullptr) g->checkpoint();
}

/// Installs a governor enforcing `limits` for the calling thread's scope
/// (and, through parallel_for, for every pool worker participating in
/// loops published from it). A no-op when `limits` is all-defaults, so
/// nested pipeline entry points — chunked frames calling dpz_compress,
/// rate-control probes — inherit the enclosing governor instead of
/// shadowing it.
class GovernorScope {
 public:
  explicit GovernorScope(const ResourceLimits& limits);
  ~GovernorScope();

  GovernorScope(const GovernorScope&) = delete;
  GovernorScope& operator=(const GovernorScope&) = delete;

 private:
  std::shared_ptr<const ResourceGovernor> governor_;  // null when no-op
  const ResourceGovernor* previous_ = nullptr;
};

/// RAII memory reservation against the calling thread's governor chain.
/// Records nothing when the thread is ungoverned, so the types carrying
/// one (Matrix, NdArray) cost a thread-local load per construction
/// outside governed scopes. Copying re-charges the same byte count
/// against the *copying* thread's governor (a copy is a new allocation);
/// moving transfers the reservation. The reservation holds the governor
/// alive, so charged objects may safely outlive their GovernorScope.
class ScopedCharge {
 public:
  ScopedCharge() noexcept = default;
  /// Charges `bytes` against the current governor chain. Throws
  /// ResourceExhausted over budget and std::bad_alloc when an armed
  /// allocation fault fires (io::FaultPlan::alloc_fail_at).
  explicit ScopedCharge(std::uint64_t bytes);
  ScopedCharge(const ScopedCharge& other) : ScopedCharge(other.bytes_) {}
  ScopedCharge& operator=(const ScopedCharge& other) {
    if (this != &other) *this = ScopedCharge(other);
    return *this;
  }
  ScopedCharge(ScopedCharge&& other) noexcept
      : governor_(std::move(other.governor_)), bytes_(other.bytes_) {
    other.bytes_ = 0;
  }
  ScopedCharge& operator=(ScopedCharge&& other) noexcept {
    if (this != &other) {
      reset();
      governor_ = std::move(other.governor_);
      bytes_ = other.bytes_;
      other.bytes_ = 0;
    }
    return *this;
  }
  ~ScopedCharge() { reset(); }

  /// Releases the reservation early (idempotent).
  void reset() noexcept {
    if (governor_ != nullptr) {
      governor_->release(bytes_);
      governor_ = nullptr;
    }
    bytes_ = 0;
  }

 private:
  std::shared_ptr<const ResourceGovernor> governor_;
  std::uint64_t bytes_ = 0;
};

namespace detail {

/// Worker-side governor adoption for ThreadPool: installs the published
/// job's governor (may be null) as the worker's thread-local for one
/// chunk. The pool's Shared job state holds the owning shared_ptr.
class GovernorAdopt {
 public:
  explicit GovernorAdopt(const ResourceGovernor* governor) noexcept;
  ~GovernorAdopt();

  GovernorAdopt(const GovernorAdopt&) = delete;
  GovernorAdopt& operator=(const GovernorAdopt&) = delete;

 private:
  const ResourceGovernor* previous_;
};

/// Allocation fault injection, armed by io::FaultPlan::alloc_fail_at
/// through install_fault_plan (the storage lives here because io links
/// util, not the reverse): set the 1-based index of the charged
/// allocation that must fail with std::bad_alloc on this thread; 0
/// disarms.
void set_alloc_fault(std::uint64_t nth) noexcept;
/// Consumes one charged-allocation slot; true when this one must fail.
[[nodiscard]] bool consume_alloc_fault() noexcept;

}  // namespace detail

}  // namespace dpz
