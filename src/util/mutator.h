// Structure-aware archive mutator for the decode fuzz harness.
//
// The harness (tests/fuzz_decode.cpp) compresses known-good data in
// process, corrupts the archive with seeded mutations from this header,
// and asserts that every decoder either throws a recoverable dpz::Error
// or produces a shape-consistent result — never crashes, never reads out
// of bounds, never sizes an allocation from an unvalidated field.
//
// All randomness flows through the repo's deterministic Rng (util/rng.h),
// so a failing (seed, shape) pair reproduces bit-exactly on any host —
// the property that makes a fuzz regression debuggable after CI finds it.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "util/rng.h"

namespace dpz {

/// Corruption strategies. Beyond the generic bit/byte noise, the
/// structure-aware kinds target the constructs every dpz container shares:
/// little-endian u64 length/size/count fields and section framing.
enum class MutationKind {
  kBitFlip,          ///< flip 1..8 random bits
  kByteSet,          ///< overwrite 1..4 random bytes with random values
  kTruncate,         ///< drop a random-length tail
  kExtend,           ///< append random junk bytes
  kZeroRegion,       ///< zero a random region
  kFillRegion,       ///< 0xFF-fill a random region
  kLengthField,      ///< rewrite a u64 at a random offset (0, huge, +-delta)
  kHeaderByte,       ///< corrupt a byte within the leading 24 bytes
  kDuplicateRegion,  ///< copy one random region over another
  kCrcField,         ///< rewrite a u32 at a random offset (0, ~orig, random)
  kParitySection,    ///< corrupt a region in the archive's trailing
                     ///< quarter, where a DZC3 container keeps its parity
                     ///< shards — damaged redundancy must never poison an
                     ///< intact decode
};

/// Little-endian u64 field access, for targeted corruption in tests.
inline std::uint64_t read_u64_at(std::span<const std::uint8_t> bytes,
                                 std::size_t offset) {
  std::uint64_t v = 0;
  for (std::size_t i = 0; i < 8; ++i)
    v |= static_cast<std::uint64_t>(bytes[offset + i]) << (8 * i);
  return v;
}

inline void write_u64_at(std::span<std::uint8_t> bytes, std::size_t offset,
                         std::uint64_t v) {
  for (std::size_t i = 0; i < 8; ++i)
    bytes[offset + i] = static_cast<std::uint8_t>(v >> (8 * i));
}

/// Little-endian u32 field access (checksum fields, k, frame CRCs).
inline std::uint32_t read_u32_at(std::span<const std::uint8_t> bytes,
                                 std::size_t offset) {
  std::uint32_t v = 0;
  for (std::size_t i = 0; i < 4; ++i)
    v |= static_cast<std::uint32_t>(bytes[offset + i]) << (8 * i);
  return v;
}

inline void write_u32_at(std::span<std::uint8_t> bytes, std::size_t offset,
                         std::uint32_t v) {
  for (std::size_t i = 0; i < 4; ++i)
    bytes[offset + i] = static_cast<std::uint8_t>(v >> (8 * i));
}

/// Deterministic archive corruptor: one instance per (shape, seed) fuzz
/// stream. Every mutate() call applies 1..3 independent mutations and
/// records a human-readable trace for test diagnostics.
class ArchiveMutator {
 public:
  explicit ArchiveMutator(std::uint64_t seed) : rng_(seed) {}

  /// Returns a corrupted copy of `archive`; never leaves it empty unless
  /// the truncation strategy drew length zero (decoders must survive an
  /// empty input too).
  std::vector<std::uint8_t> mutate(std::span<const std::uint8_t> archive) {
    std::vector<std::uint8_t> out(archive.begin(), archive.end());
    trace_.clear();
    const std::size_t rounds = 1 + rng_.uniform_index(3);
    for (std::size_t round = 0; round < rounds; ++round) {
      if (out.empty()) break;
      apply(out, static_cast<MutationKind>(rng_.uniform_index(11)));
    }
    return out;
  }

  /// Applies one specific mutation in place (also used table-driven).
  void apply(std::vector<std::uint8_t>& bytes, MutationKind kind) {
    switch (kind) {
      case MutationKind::kBitFlip: {
        const std::size_t flips = 1 + rng_.uniform_index(8);
        for (std::size_t i = 0; i < flips; ++i) {
          const std::size_t bit = rng_.uniform_index(bytes.size() * 8);
          bytes[bit >> 3] ^= static_cast<std::uint8_t>(1U << (bit & 7U));
        }
        note("bit-flip x" + std::to_string(flips));
        break;
      }
      case MutationKind::kByteSet: {
        const std::size_t n = 1 + rng_.uniform_index(4);
        for (std::size_t i = 0; i < n; ++i)
          bytes[rng_.uniform_index(bytes.size())] =
              static_cast<std::uint8_t>(rng_.next_u64());
        note("byte-set x" + std::to_string(n));
        break;
      }
      case MutationKind::kTruncate: {
        const std::size_t keep = rng_.uniform_index(bytes.size());
        bytes.resize(keep);
        note("truncate to " + std::to_string(keep));
        break;
      }
      case MutationKind::kExtend: {
        const std::size_t extra = 1 + rng_.uniform_index(64);
        for (std::size_t i = 0; i < extra; ++i)
          bytes.push_back(static_cast<std::uint8_t>(rng_.next_u64()));
        note("extend by " + std::to_string(extra));
        break;
      }
      case MutationKind::kZeroRegion:
      case MutationKind::kFillRegion: {
        const std::size_t begin = rng_.uniform_index(bytes.size());
        const std::size_t len =
            1 + rng_.uniform_index(bytes.size() - begin);
        const std::uint8_t fill =
            kind == MutationKind::kZeroRegion ? 0x00 : 0xFF;
        for (std::size_t i = begin; i < begin + len; ++i) bytes[i] = fill;
        note((fill == 0 ? "zero [" : "fill [") + std::to_string(begin) +
             ", +" + std::to_string(len) + ")");
        break;
      }
      case MutationKind::kLengthField: {
        if (bytes.size() < 8) {
          apply(bytes, MutationKind::kBitFlip);
          break;
        }
        const std::size_t offset = rng_.uniform_index(bytes.size() - 7);
        const std::uint64_t original = read_u64_at(bytes, offset);
        std::uint64_t forged = 0;
        switch (rng_.uniform_index(5)) {
          case 0: forged = 0; break;
          case 1: forged = original + 1 + rng_.uniform_index(16); break;
          case 2: forged = original - 1 - rng_.uniform_index(16); break;
          case 3: forged = rng_.next_u64(); break;
          default: forged = std::uint64_t{1} << (32 + rng_.uniform_index(32));
        }
        write_u64_at(bytes, offset, forged);
        note("length-field @" + std::to_string(offset) + " -> " +
             std::to_string(forged));
        break;
      }
      case MutationKind::kHeaderByte: {
        const std::size_t limit = bytes.size() < 24 ? bytes.size() : 24;
        bytes[rng_.uniform_index(limit)] =
            static_cast<std::uint8_t>(rng_.next_u64());
        note("header-byte");
        break;
      }
      case MutationKind::kDuplicateRegion: {
        const std::size_t len =
            1 + rng_.uniform_index(bytes.size() < 32 ? bytes.size() : 32);
        const std::size_t src = rng_.uniform_index(bytes.size() - len + 1);
        const std::size_t dst = rng_.uniform_index(bytes.size() - len + 1);
        for (std::size_t i = 0; i < len; ++i)
          bytes[dst + i] = bytes[src + i];
        note("duplicate " + std::to_string(src) + "->" +
             std::to_string(dst) + " x" + std::to_string(len));
        break;
      }
      case MutationKind::kCrcField: {
        // Targets the v2 CRC32C seals (and any other u32 field): a forged
        // checksum must read as corruption, never be trusted.
        if (bytes.size() < 4) {
          apply(bytes, MutationKind::kBitFlip);
          break;
        }
        const std::size_t offset = rng_.uniform_index(bytes.size() - 3);
        const std::uint32_t original = read_u32_at(bytes, offset);
        std::uint32_t forged = 0;
        switch (rng_.uniform_index(3)) {
          case 0: forged = 0; break;
          case 1: forged = ~original; break;
          default:
            forged = static_cast<std::uint32_t>(rng_.next_u64());
            break;
        }
        write_u32_at(bytes, offset, forged);
        note("crc-field @" + std::to_string(offset) + " -> " +
             std::to_string(forged));
        break;
      }
      case MutationKind::kParitySection: {
        // Aims at the container's tail, where DZC3 stores its parity
        // shards after the frame area. On other layouts this degrades to
        // tail noise, which the decoders must survive anyway.
        const std::size_t tail_begin = bytes.size() - bytes.size() / 4;
        if (tail_begin >= bytes.size()) {
          apply(bytes, MutationKind::kBitFlip);
          break;
        }
        const std::size_t begin =
            tail_begin + rng_.uniform_index(bytes.size() - tail_begin);
        const std::size_t len =
            1 + rng_.uniform_index(bytes.size() - begin);
        for (std::size_t i = begin; i < begin + len; ++i)
          bytes[i] = static_cast<std::uint8_t>(rng_.next_u64());
        note("parity-section [" + std::to_string(begin) + ", +" +
             std::to_string(len) + ")");
        break;
      }
    }
  }

  /// Trace of the mutations applied by the most recent mutate() call.
  [[nodiscard]] const std::string& trace() const { return trace_; }

 private:
  void note(const std::string& what) {
    if (!trace_.empty()) trace_ += "; ";
    trace_ += what;
  }

  Rng rng_;
  std::string trace_;
};

}  // namespace dpz
