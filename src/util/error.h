// Error handling primitives shared by every dpz module.
//
// Following the C++ Core Guidelines (E.2, E.14) we report errors that the
// immediate caller cannot handle by throwing exceptions derived from a
// single library-wide base type, so applications can catch `dpz::Error`
// at their fault boundary. Every exception carries a StatusCode so fault
// boundaries (the C API, the fuzz harness) can classify failures without
// a catch cascade.
//
// Two recoverability classes matter for untrusted input:
//
//  * FormatError (StatusCode::kFormat) — the *data* is malformed. Every
//    byte that originates in an archive must fail through this path; it is
//    a recoverable status, not a bug, and decoders are required to reach
//    it instead of undefined behavior, aborts, or unbounded allocation.
//  * InvalidArgument (StatusCode::kInvalidArgument) — the *caller* broke a
//    documented precondition. DPZ_REQUIRE exists for these programming
//    contracts only; it must never guard archive-derived values (the
//    custom lint in tools/lint.sh enforces this for the byte/bit readers).
#pragma once

#include <stdexcept>
#include <string>

namespace dpz {

/// Machine-readable classification of a dpz failure. Mirrors the C API's
/// DPZ_ERR_* values (dpz_c.h) so status codes survive the C boundary.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument = 1,
  kFormat = 2,
  kInternal = 3,
  kIo = 4,
  kNumerical = 5,
};

/// Human-readable name of a status code ("ok", "format", ...).
constexpr const char* status_code_name(StatusCode code) {
  switch (code) {
    case StatusCode::kOk: return "ok";
    case StatusCode::kInvalidArgument: return "invalid_argument";
    case StatusCode::kFormat: return "format";
    case StatusCode::kIo: return "io";
    case StatusCode::kNumerical: return "numerical";
    case StatusCode::kInternal: break;
  }
  return "internal";
}

/// Base class of every exception thrown by the dpz library.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what,
                 StatusCode code = StatusCode::kInternal)
      : std::runtime_error(what), code_(code) {}

  /// Classification of this failure (stable across the C boundary).
  [[nodiscard]] StatusCode code() const noexcept { return code_; }

 private:
  StatusCode code_;
};

/// A caller violated a documented precondition (bad size, bad parameter...).
class InvalidArgument : public Error {
 public:
  explicit InvalidArgument(const std::string& what)
      : Error(what, StatusCode::kInvalidArgument) {}
};

/// An I/O operation (file read/write) failed.
class IoError : public Error {
 public:
  explicit IoError(const std::string& what)
      : Error(what, StatusCode::kIo) {}
};

/// A compressed archive is malformed, truncated, or version-incompatible.
/// This is the required failure mode for every archive-driven defect: a
/// decoder given adversarial bytes must throw FormatError (recoverable)
/// rather than crash, read out of bounds, or allocate unboundedly.
class FormatError : public Error {
 public:
  explicit FormatError(const std::string& what)
      : Error(what, StatusCode::kFormat) {}
};

/// A numerical routine failed to converge or hit an ill-conditioned input.
class NumericalError : public Error {
 public:
  explicit NumericalError(const std::string& what)
      : Error(what, StatusCode::kNumerical) {}
};

namespace detail {
[[noreturn]] inline void throw_invalid_argument(const char* cond,
                                                const char* file, int line,
                                                const std::string& msg) {
  std::string what = std::string(file) + ":" + std::to_string(line) +
                     ": requirement failed (" + cond + ")";
  if (!msg.empty()) what += ": " + msg;
  throw InvalidArgument(what);
}
}  // namespace detail

}  // namespace dpz

/// Precondition check: throws dpz::InvalidArgument when `cond` is false.
/// For programming contracts only — never for values read from an archive
/// (those must throw dpz::FormatError so callers can treat them as a
/// recoverable status).
#define DPZ_REQUIRE(cond, msg)                                              \
  do {                                                                      \
    if (!(cond))                                                            \
      ::dpz::detail::throw_invalid_argument(#cond, __FILE__, __LINE__,      \
                                            (msg));                        \
  } while (0)
