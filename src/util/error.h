// Error handling primitives shared by every dpz module.
//
// Following the C++ Core Guidelines (E.2, E.14) we report errors that the
// immediate caller cannot handle by throwing exceptions derived from a
// single library-wide base type, so applications can catch `dpz::Error`
// at their fault boundary. Programming-contract violations (broken
// preconditions inside the library) use DPZ_REQUIRE, which throws
// `dpz::InvalidArgument` with file/line context.
#pragma once

#include <stdexcept>
#include <string>

namespace dpz {

/// Base class of every exception thrown by the dpz library.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// A caller violated a documented precondition (bad size, bad parameter...).
class InvalidArgument : public Error {
 public:
  explicit InvalidArgument(const std::string& what) : Error(what) {}
};

/// An I/O operation (file read/write) failed.
class IoError : public Error {
 public:
  explicit IoError(const std::string& what) : Error(what) {}
};

/// A compressed archive is malformed, truncated, or version-incompatible.
class FormatError : public Error {
 public:
  explicit FormatError(const std::string& what) : Error(what) {}
};

/// A numerical routine failed to converge or hit an ill-conditioned input.
class NumericalError : public Error {
 public:
  explicit NumericalError(const std::string& what) : Error(what) {}
};

namespace detail {
[[noreturn]] inline void throw_invalid_argument(const char* cond,
                                                const char* file, int line,
                                                const std::string& msg) {
  std::string what = std::string(file) + ":" + std::to_string(line) +
                     ": requirement failed (" + cond + ")";
  if (!msg.empty()) what += ": " + msg;
  throw InvalidArgument(what);
}
}  // namespace detail

}  // namespace dpz

/// Precondition check: throws dpz::InvalidArgument when `cond` is false.
#define DPZ_REQUIRE(cond, msg)                                              \
  do {                                                                      \
    if (!(cond))                                                            \
      ::dpz::detail::throw_invalid_argument(#cond, __FILE__, __LINE__,      \
                                            (msg));                        \
  } while (0)
