// Error handling primitives shared by every dpz module.
//
// Following the C++ Core Guidelines (E.2, E.14) we report errors that the
// immediate caller cannot handle by throwing exceptions derived from a
// single library-wide base type, so applications can catch `dpz::Error`
// at their fault boundary. Every exception carries a StatusCode so fault
// boundaries (the C API, the fuzz harness) can classify failures without
// a catch cascade.
//
// Two recoverability classes matter for untrusted input:
//
//  * FormatError (StatusCode::kFormat) — the *data* is malformed. Every
//    byte that originates in an archive must fail through this path; it is
//    a recoverable status, not a bug, and decoders are required to reach
//    it instead of undefined behavior, aborts, or unbounded allocation.
//  * InvalidArgument (StatusCode::kInvalidArgument) — the *caller* broke a
//    documented precondition. DPZ_REQUIRE exists for these programming
//    contracts only; it must never guard archive-derived values (the
//    custom lint in tools/lint.sh enforces this for the byte/bit readers).
#pragma once

#include <stdexcept>
#include <string>

namespace dpz {

/// Machine-readable classification of a dpz failure. Mirrors the C API's
/// DPZ_ERR_* values (dpz_c.h) so status codes survive the C boundary.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument = 1,
  kFormat = 2,
  kInternal = 3,
  kIo = 4,
  kNumerical = 5,
  /// A stored CRC32C did not match the archive bytes (format v2). A
  /// refinement of kFormat: the framing parsed, but the content is
  /// provably corrupted. ChecksumError derives from FormatError, so
  /// fault boundaries that catch FormatError handle both.
  kChecksum = 6,
  /// Not an exception code: a best-effort decode completed but lost
  /// frames (see core/chunked.h DecodeReport and the C API DPZ_PARTIAL).
  kPartial = 7,
  /// A resource budget was exceeded: a memory charge or pre-flight decode
  /// admission check did not fit ResourceLimits::max_memory_bytes, or the
  /// process ran out of memory (std::bad_alloc at a fault boundary). See
  /// util/resource.h and docs/ROBUSTNESS.md.
  kResourceExhausted = 8,
  /// The operation's ResourceLimits deadline passed before it finished.
  /// The partial work is discarded; inputs are never modified.
  kDeadlineExceeded = 9,
  /// The operation's CancelToken was triggered. Like kDeadlineExceeded,
  /// this is a clean abort: no output is produced, nothing leaks.
  kCancelled = 10,
};

/// Human-readable name of a status code ("ok", "format", ...).
constexpr const char* status_code_name(StatusCode code) {
  switch (code) {
    case StatusCode::kOk: return "ok";
    case StatusCode::kInvalidArgument: return "invalid_argument";
    case StatusCode::kFormat: return "format";
    case StatusCode::kIo: return "io";
    case StatusCode::kNumerical: return "numerical";
    case StatusCode::kChecksum: return "checksum";
    case StatusCode::kPartial: return "partial";
    case StatusCode::kResourceExhausted: return "resource_exhausted";
    case StatusCode::kDeadlineExceeded: return "deadline_exceeded";
    case StatusCode::kCancelled: return "cancelled";
    case StatusCode::kInternal: break;
  }
  return "internal";
}

/// Base class of every exception thrown by the dpz library.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what,
                 StatusCode code = StatusCode::kInternal)
      : std::runtime_error(what), code_(code) {}

  /// Classification of this failure (stable across the C boundary).
  [[nodiscard]] StatusCode code() const noexcept { return code_; }

 private:
  StatusCode code_;
};

/// A caller violated a documented precondition (bad size, bad parameter...).
class InvalidArgument : public Error {
 public:
  explicit InvalidArgument(const std::string& what)
      : Error(what, StatusCode::kInvalidArgument) {}
};

/// An I/O operation (file read/write) failed.
class IoError : public Error {
 public:
  explicit IoError(const std::string& what)
      : Error(what, StatusCode::kIo) {}
};

/// A compressed archive is malformed, truncated, or version-incompatible.
/// This is the required failure mode for every archive-driven defect: a
/// decoder given adversarial bytes must throw FormatError (recoverable)
/// rather than crash, read out of bounds, or allocate unboundedly.
class FormatError : public Error {
 public:
  explicit FormatError(const std::string& what)
      : Error(what, StatusCode::kFormat) {}

 protected:
  /// For subclasses that refine the classification (ChecksumError).
  FormatError(const std::string& what, StatusCode code)
      : Error(what, code) {}
};

/// A v2 archive section failed its CRC32C check. Thrown *before* the
/// damaged payload reaches zlib or any allocation sized from it, and
/// catchable as FormatError at every existing fault boundary.
class ChecksumError : public FormatError {
 public:
  explicit ChecksumError(const std::string& what)
      : FormatError(what, StatusCode::kChecksum) {}
};

/// A numerical routine failed to converge or hit an ill-conditioned input.
class NumericalError : public Error {
 public:
  explicit NumericalError(const std::string& what)
      : Error(what, StatusCode::kNumerical) {}
};

/// A memory charge or pre-flight admission check exceeded the operation's
/// ResourceLimits::max_memory_bytes budget (util/resource.h). Recoverable:
/// the operation aborted cleanly before (or while) allocating, and retrying
/// with a larger budget — or rejecting the request — are both sound.
class ResourceExhausted : public Error {
 public:
  explicit ResourceExhausted(const std::string& what)
      : Error(what, StatusCode::kResourceExhausted) {}
};

/// The operation ran past its ResourceLimits deadline and aborted at the
/// next cooperative checkpoint. Partial work is discarded.
class DeadlineExceeded : public Error {
 public:
  explicit DeadlineExceeded(const std::string& what)
      : Error(what, StatusCode::kDeadlineExceeded) {}
};

/// The operation's CancelToken fired and the pipeline aborted at the next
/// cooperative checkpoint. Partial work is discarded.
class Cancelled : public Error {
 public:
  explicit Cancelled(const std::string& what)
      : Error(what, StatusCode::kCancelled) {}
};

namespace detail {
[[noreturn]] inline void throw_invalid_argument(const char* cond,
                                                const char* file, int line,
                                                const std::string& msg) {
  std::string what = std::string(file) + ":" + std::to_string(line) +
                     ": requirement failed (" + cond + ")";
  if (!msg.empty()) what += ": " + msg;
  throw InvalidArgument(what);
}
}  // namespace detail

}  // namespace dpz

/// Precondition check: throws dpz::InvalidArgument when `cond` is false.
/// For programming contracts only — never for values read from an archive
/// (those must throw dpz::FormatError so callers can treat them as a
/// recoverable status).
#define DPZ_REQUIRE(cond, msg)                                              \
  do {                                                                      \
    if (!(cond))                                                            \
      ::dpz::detail::throw_invalid_argument(#cond, __FILE__, __LINE__,      \
                                            (msg));                        \
  } while (0)
