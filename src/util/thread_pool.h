// A small OpenMP-style parallel-for executor.
//
// The paper notes (SS V-C5) that DPZ's block-based design parallelizes
// naturally: per-block DCT, quantization, and per-subset PCA carry no
// cross-block dependencies. We provide `parallel_for` with static
// partitioning: the index range is split into one contiguous chunk per
// worker, which keeps results bit-deterministic regardless of thread count
// (each index is processed exactly once, writes are disjoint).
#pragma once

#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace dpz {

/// Fixed-size pool of worker threads executing static-partitioned loops.
///
/// Thread-safety: `parallel_for` may be called from one thread at a time
/// (the pool is a per-call fork/join executor, not a task queue).
class ThreadPool {
 public:
  /// Creates a pool with `threads` workers; 0 means hardware concurrency.
  explicit ThreadPool(unsigned threads = 0)
      : thread_count_(threads != 0 ? threads
                                   : default_thread_count()) {}

  [[nodiscard]] unsigned thread_count() const { return thread_count_; }

  /// Applies `body(i)` for every i in [begin, end). Chunks are contiguous,
  /// so `body` may freely write to disjoint per-index output slots.
  /// Exceptions thrown by `body` are captured and rethrown (first one wins).
  void parallel_for(std::size_t begin, std::size_t end,
                    const std::function<void(std::size_t)>& body) const {
    if (begin >= end) return;
    const std::size_t n = end - begin;
    const unsigned workers =
        static_cast<unsigned>(std::min<std::size_t>(thread_count_, n));
    if (workers <= 1) {
      for (std::size_t i = begin; i < end; ++i) body(i);
      return;
    }

    std::exception_ptr first_error;
    std::mutex error_mutex;
    std::vector<std::thread> threads;
    threads.reserve(workers);

    const std::size_t chunk = (n + workers - 1) / workers;
    for (unsigned w = 0; w < workers; ++w) {
      const std::size_t lo = begin + static_cast<std::size_t>(w) * chunk;
      const std::size_t hi = std::min(end, lo + chunk);
      if (lo >= hi) break;
      threads.emplace_back([&, lo, hi] {
        try {
          for (std::size_t i = lo; i < hi; ++i) body(i);
        } catch (...) {
          const std::lock_guard<std::mutex> lock(error_mutex);
          if (!first_error) first_error = std::current_exception();
        }
      });
    }
    for (auto& t : threads) t.join();
    if (first_error) std::rethrow_exception(first_error);
  }

  /// Shared process-wide pool (sized to hardware concurrency).
  static const ThreadPool& global() {
    static const ThreadPool pool;
    return pool;
  }

 private:
  static unsigned default_thread_count() {
    const unsigned hw = std::thread::hardware_concurrency();
    return hw != 0 ? hw : 1;
  }

  unsigned thread_count_;
};

/// Convenience wrapper over the global pool.
inline void parallel_for(std::size_t begin, std::size_t end,
                         const std::function<void(std::size_t)>& body) {
  ThreadPool::global().parallel_for(begin, end, body);
}

}  // namespace dpz
