// An OpenMP-style parallel-for executor with persistent workers.
//
// The paper notes (SS V-C5) that DPZ's block-based design parallelizes
// naturally: per-block DCT, quantization, per-frame encoding, and
// per-subset PCA carry no cross-block dependencies. We provide
// `parallel_for` with static partitioning: the index range is split into
// one contiguous chunk per participant, which keeps results
// bit-deterministic regardless of thread count (each index is processed
// exactly once, writes are disjoint, and no reduction order depends on
// the partition).
//
// Reentrancy contract:
//   * parallel_for may be called concurrently from any number of
//     threads; concurrent top-level calls on the same pool are
//     serialized internally.
//   * parallel_for may be called from inside a parallel_for body (on the
//     same or another pool); nested calls run inline on the calling
//     thread, so the worker set never oversubscribes and nesting cannot
//     deadlock.
//
// Pool selection: pipeline entry points install the pool that their
// `threads` knob resolves to via ScopedThreads; every inner loop that
// calls the free `parallel_for` then runs on that pool. With no scope
// installed, the process-wide pool (hardware concurrency) is used.
//
// Resource governance: parallel_for publishes the calling thread's
// ResourceGovernor (util/resource.h) with each job. Workers adopt it for
// their chunk — so governed memory charges inside the body account
// correctly — and every participant polls it between strip indices,
// which bounds cancellation/deadline abort latency to one body call even
// mid-loop. Ungoverned loops pay one thread-local load per index.
#pragma once

#include <cstddef>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "util/annotated_mutex.h"

namespace dpz {

/// Fixed-size pool of persistent worker threads executing
/// static-partitioned loops. The calling thread participates in every
/// loop, so a pool of `threads` executes with exactly `threads`-way
/// parallelism while spawning `threads - 1` workers.
class ThreadPool {
 public:
  /// Creates a pool with `threads` participants; 0 means hardware
  /// concurrency.
  explicit ThreadPool(unsigned threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] unsigned thread_count() const { return thread_count_; }

  /// Applies `body(i)` for every i in [begin, end). Chunks are
  /// contiguous, so `body` may freely write to disjoint per-index output
  /// slots. Exceptions thrown by `body` are captured and rethrown (first
  /// one wins). Safe to call concurrently and from inside another
  /// parallel_for body (nested calls run inline; see header comment).
  void parallel_for(std::size_t begin, std::size_t end,
                    const std::function<void(std::size_t)>& body) const;

  /// True when the calling thread is currently executing a parallel_for
  /// body (of any pool). Such calls run their own loops inline.
  static bool in_parallel_region();

  /// Shared process-wide pool (sized to hardware concurrency).
  static const ThreadPool& global();

 private:
  struct Shared;

  void worker_main(unsigned index) const;

  unsigned thread_count_;
  std::unique_ptr<Shared> shared_;
  std::vector<std::thread> workers_;
  /// Serializes top-level parallel_for calls arriving from different
  /// threads; the pool runs one loop at a time.
  mutable Mutex run_mutex_;
};

/// Installs a pool as the calling thread's active pool for the lifetime
/// of the scope; the free `parallel_for` below routes through it. Scopes
/// nest (the previous pool is restored on destruction) and are
/// per-thread, so concurrent pipelines with different knobs do not
/// interfere.
class PoolScope {
 public:
  explicit PoolScope(const ThreadPool& pool) : previous_(exchange(&pool)) {}
  ~PoolScope() { exchange(previous_); }

  PoolScope(const PoolScope&) = delete;
  PoolScope& operator=(const PoolScope&) = delete;

  /// The calling thread's active pool (the global pool when no scope is
  /// installed).
  static const ThreadPool& current();

 private:
  /// Swaps the thread-local active-pool pointer, returning the old one.
  static const ThreadPool* exchange(const ThreadPool* pool);

  const ThreadPool* previous_;
};

/// Resolves a `threads` configuration knob for the duration of a
/// pipeline call: 0 keeps the ambient pool (the enclosing scope's, or
/// the global pool), any other value runs the scope on a dedicated pool
/// of that size. Output never depends on the choice — only wall-clock
/// does.
class ScopedThreads {
 public:
  explicit ScopedThreads(unsigned threads)
      : owned_(threads != 0 ? std::make_unique<ThreadPool>(threads)
                            : nullptr),
        scope_(owned_ ? *owned_ : PoolScope::current()) {}

 private:
  std::unique_ptr<ThreadPool> owned_;
  PoolScope scope_;
};

/// Convenience wrapper over the calling thread's active pool.
inline void parallel_for(std::size_t begin, std::size_t end,
                         const std::function<void(std::size_t)>& body) {
  PoolScope::current().parallel_for(begin, end, body);
}

}  // namespace dpz
