// Minimal recursive-descent JSON reader.
//
// Exists so in-repo consumers (the trace-format test, the bench
// baseline comparison) can parse the JSON this codebase itself emits
// without taking a third-party dependency. Supports the full JSON value
// grammar with the simplifications that suffice here: numbers parse as
// double, \u escapes decode only the BMP code point's low byte behavior
// is not needed so they are preserved verbatim as "\uXXXX" text, and
// duplicate object keys keep the last value. Throws std::runtime_error
// with a byte offset on malformed input.
#pragma once

#include <cctype>
#include <cstddef>
#include <map>
#include <stdexcept>
#include <string>
#include <vector>

namespace dpz::json {

struct Value {
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  Type type = Type::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string text;
  std::vector<Value> items;           // kArray
  std::map<std::string, Value> members;  // kObject

  [[nodiscard]] bool is_object() const { return type == Type::kObject; }
  [[nodiscard]] bool is_array() const { return type == Type::kArray; }
  [[nodiscard]] bool is_number() const { return type == Type::kNumber; }
  [[nodiscard]] bool is_string() const { return type == Type::kString; }

  /// Member lookup; nullptr when absent or not an object.
  [[nodiscard]] const Value* find(const std::string& key) const {
    if (type != Type::kObject) return nullptr;
    const auto it = members.find(key);
    return it == members.end() ? nullptr : &it->second;
  }
};

namespace detail {

class Parser {
 public:
  explicit Parser(const std::string& text) : s_(text) {}

  Value parse_document() {
    Value v = parse_value();
    skip_ws();
    if (pos_ != s_.size()) fail("trailing content");
    return v;
  }

 private:
  [[noreturn]] void fail(const char* what) const {
    throw std::runtime_error("json_mini: " + std::string(what) +
                             " at byte " + std::to_string(pos_));
  }

  void skip_ws() {
    while (pos_ < s_.size() &&
           (s_[pos_] == ' ' || s_[pos_] == '\t' || s_[pos_] == '\n' ||
            s_[pos_] == '\r'))
      ++pos_;
  }

  char peek() {
    if (pos_ >= s_.size()) fail("unexpected end of input");
    return s_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail("unexpected character");
    ++pos_;
  }

  bool consume_word(const char* word) {
    std::size_t n = 0;
    while (word[n] != '\0') ++n;
    if (s_.compare(pos_, n, word) != 0) return false;
    pos_ += n;
    return true;
  }

  Value parse_value() {
    skip_ws();
    switch (peek()) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': {
        Value v;
        v.type = Value::Type::kString;
        v.text = parse_string();
        return v;
      }
      case 't':
      case 'f': {
        Value v;
        v.type = Value::Type::kBool;
        if (consume_word("true")) {
          v.boolean = true;
        } else if (consume_word("false")) {
          v.boolean = false;
        } else {
          fail("invalid literal");
        }
        return v;
      }
      case 'n':
        if (!consume_word("null")) fail("invalid literal");
        return Value{};
      default: return parse_number();
    }
  }

  Value parse_object() {
    expect('{');
    Value v;
    v.type = Value::Type::kObject;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    for (;;) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      v.members[key] = parse_value();
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return v;
    }
  }

  Value parse_array() {
    expect('[');
    Value v;
    v.type = Value::Type::kArray;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    for (;;) {
      v.items.push_back(parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return v;
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    for (;;) {
      if (pos_ >= s_.size()) fail("unterminated string");
      const char c = s_[pos_++];
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) fail("control character");
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= s_.size()) fail("unterminated escape");
      const char esc = s_[pos_++];
      switch (esc) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          if (pos_ + 4 > s_.size()) fail("truncated \\u escape");
          for (std::size_t i = 0; i < 4; ++i)
            if (std::isxdigit(static_cast<unsigned char>(s_[pos_ + i])) ==
                0)
              fail("invalid \\u escape");
          out.append("\\u").append(s_, pos_, 4);  // preserved verbatim
          pos_ += 4;
          break;
        }
        default: fail("invalid escape");
      }
    }
  }

  Value parse_number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    auto digits = [&] {
      const std::size_t before = pos_;
      while (pos_ < s_.size() &&
             std::isdigit(static_cast<unsigned char>(s_[pos_])) != 0)
        ++pos_;
      if (pos_ == before) fail("invalid number");
    };
    digits();
    if (pos_ < s_.size() && s_[pos_] == '.') {
      ++pos_;
      digits();
    }
    if (pos_ < s_.size() && (s_[pos_] == 'e' || s_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < s_.size() && (s_[pos_] == '+' || s_[pos_] == '-')) ++pos_;
      digits();
    }
    Value v;
    v.type = Value::Type::kNumber;
    v.number = std::stod(s_.substr(start, pos_ - start));
    return v;
  }

  const std::string& s_;
  std::size_t pos_ = 0;
};

}  // namespace detail

/// Parses one JSON document; throws std::runtime_error on malformed input.
inline Value parse(const std::string& text) {
  return detail::Parser(text).parse_document();
}

}  // namespace dpz::json
