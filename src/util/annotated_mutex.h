// Capability-annotated synchronization primitives for Clang's
// -Wthread-safety analysis (docs/STATIC_ANALYSIS.md).
//
// Every mutex, scoped lock, and condition variable in src/ comes from
// this header — tools/dpz_analyze (check `naked-mutex`) rejects naked
// std::mutex / std::lock_guard / std::condition_variable anywhere else.
// The wrappers cost nothing: each method forwards to the std type it
// owns, and the DPZ_* attribute macros expand to Clang's thread-safety
// attributes under Clang and to nothing elsewhere, so GCC builds see
// plain inline forwarding.
//
// The payoff is compile-time lock discipline: a member declared
// DPZ_GUARDED_BY(m) cannot be read or written without holding `m`, a
// method declared DPZ_REQUIRES(m) cannot be called without it, and the
// clang-tsa CMake preset promotes any violation to a build error before
// TSan ever runs the code.
#pragma once

#include <condition_variable>
#include <mutex>

// Attribute plumbing: real attributes under Clang, no-ops elsewhere.
// Kept to the subset the tree uses; extend alongside the Clang docs'
// mutex.h reference when a new annotation is needed.
#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(capability)
#define DPZ_TSA_(x) __attribute__((x))
#endif
#endif
#ifndef DPZ_TSA_
#define DPZ_TSA_(x)
#endif

/// Marks a class as a lockable capability ("mutex" is the kind shown in
/// diagnostics).
#define DPZ_CAPABILITY(x) DPZ_TSA_(capability(x))
/// Marks an RAII class that acquires in its constructor and releases in
/// its destructor.
#define DPZ_SCOPED_CAPABILITY DPZ_TSA_(scoped_lockable)
/// Declares that a member may only be accessed while holding `x`.
#define DPZ_GUARDED_BY(x) DPZ_TSA_(guarded_by(x))
/// Declares that the pointee of a pointer member is guarded by `x`.
#define DPZ_PT_GUARDED_BY(x) DPZ_TSA_(pt_guarded_by(x))
/// Declares that callers must hold the listed capabilities.
#define DPZ_REQUIRES(...) DPZ_TSA_(requires_capability(__VA_ARGS__))
/// Declares that a function acquires the listed capabilities.
#define DPZ_ACQUIRE(...) DPZ_TSA_(acquire_capability(__VA_ARGS__))
/// Declares that a function releases the listed capabilities.
#define DPZ_RELEASE(...) DPZ_TSA_(release_capability(__VA_ARGS__))
/// Declares a try-lock: acquires when the function returns `result`.
#define DPZ_TRY_ACQUIRE(...) DPZ_TSA_(try_acquire_capability(__VA_ARGS__))
/// Declares that callers must NOT hold the listed capabilities.
#define DPZ_EXCLUDES(...) DPZ_TSA_(locks_excluded(__VA_ARGS__))
/// Opts one function out of the analysis (justify at the use site).
#define DPZ_NO_THREAD_SAFETY_ANALYSIS DPZ_TSA_(no_thread_safety_analysis)

namespace dpz {

/// std::mutex with the capability attribute. Satisfies Lockable, so it
/// composes with the standard library, but prefer MutexLock scopes —
/// manual lock()/unlock() pairs are where the analysis earns its keep
/// least.
class DPZ_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() DPZ_ACQUIRE() { m_.lock(); }
  void unlock() DPZ_RELEASE() { m_.unlock(); }
  bool try_lock() DPZ_TRY_ACQUIRE(true) { return m_.try_lock(); }

 private:
  friend class CondVar;
  std::mutex m_;
};

/// RAII lock of a Mutex for a scope (the std::lock_guard shape). The
/// analysis treats the capability as held from construction to the end
/// of the enclosing block on every exit path.
class DPZ_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& m) DPZ_ACQUIRE(m) : m_(m) { m_.lock(); }
  ~MutexLock() DPZ_RELEASE() { m_.unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& m_;
};

/// Condition variable over Mutex. wait() takes the Mutex itself (not a
/// lock object) so the DPZ_REQUIRES contract can name the capability;
/// write wait loops with the predicate in the calling function, where
/// the analysis can see the guarded reads:
///
///   MutexLock lock(m);
///   while (!ready) cv.wait(m);
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Atomically releases `m`, blocks until notified, reacquires `m`.
  /// Spurious wakeups happen; always wait in a predicate loop.
  void wait(Mutex& m) DPZ_REQUIRES(m) {
    std::unique_lock<std::mutex> lock(m.m_, std::adopt_lock);
    cv_.wait(lock);
    lock.release();
  }

  void notify_one() { cv_.notify_one(); }
  void notify_all() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace dpz
