// CRC32C (Castagnoli) — the integrity checksum of archive format v2.
//
// CRC32C is the variant used by iSCSI, ext4, and Btrfs; its polynomial
// (0x1EDC6F41, reflected 0x82F63B78) detects all burst errors up to 32
// bits and has better Hamming-distance properties at typical section
// sizes than the zlib CRC32. The implementation is self-contained
// slice-by-8 table lookup (no SSE4.2 intrinsics, no new dependencies),
// processing eight bytes per iteration; the tables are computed at
// compile time.
//
// The checksum is reflected with the conventional pre/post inversion, so
// crc32c("123456789") == 0xE3069283 (the standard check value) and a
// stream can be checksummed incrementally by seeding each call with the
// previous result:
//
//   crc32c(concat(a, b)) == crc32c(b, crc32c(a))
#pragma once

#include <cstdint>
#include <span>

namespace dpz {

/// CRC32C of `bytes`, optionally continuing from a previous result.
/// `seed` is the finalized value of the preceding prefix (0 for a fresh
/// stream); the return value is likewise finalized.
std::uint32_t crc32c(std::span<const std::uint8_t> bytes,
                     std::uint32_t seed = 0);

}  // namespace dpz
