// Deterministic pseudo-random number generation.
//
// Every synthetic dataset and every sampling decision in this repository is
// seeded explicitly so figures and tables are bit-reproducible run to run.
// We implement xoshiro256** (Blackman & Vigna) seeded through SplitMix64
// rather than relying on std::mt19937, whose distributions are not
// guaranteed to produce identical streams across standard libraries.
#pragma once

#include <array>
#include <cmath>
#include <cstdint>
#include <numbers>

namespace dpz {

/// SplitMix64: tiny generator used to expand a 64-bit seed into state.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9E3779B97F4A7C15ULL);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256**: fast, high-quality 64-bit PRNG with 2^256-1 period.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x5DEECE66DULL) {
    SplitMix64 sm(seed);
    for (auto& s : state_) s = sm.next();
  }

  /// Next raw 64-bit value.
  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// Uniform integer in [0, n) for n > 0 (unbiased via rejection).
  std::uint64_t uniform_index(std::uint64_t n) {
    // Lemire-style bounded generation with rejection on the tail.
    const std::uint64_t threshold = (0 - n) % n;
    for (;;) {
      const std::uint64_t r = next_u64();
      if (r >= threshold) return r % n;
    }
  }

  /// Standard normal deviate via Box-Muller (cached second value).
  double normal() {
    if (has_cached_) {
      has_cached_ = false;
      return cached_;
    }
    double u1 = uniform();
    while (u1 <= 0.0) u1 = uniform();  // avoid log(0)
    const double u2 = uniform();
    const double r = std::sqrt(-2.0 * std::log(u1));
    const double theta = 2.0 * std::numbers::pi * u2;
    cached_ = r * std::sin(theta);
    has_cached_ = true;
    return r * std::cos(theta);
  }

  /// Normal deviate with the given mean and standard deviation.
  double normal(double mean, double stddev) {
    return mean + stddev * normal();
  }

  /// Fisher-Yates shuffle of [first, last).
  template <typename It>
  void shuffle(It first, It last) {
    const auto n = static_cast<std::uint64_t>(last - first);
    for (std::uint64_t i = n; i > 1; --i) {
      const std::uint64_t j = uniform_index(i);
      using std::swap;
      swap(first[i - 1], first[j]);
    }
  }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
  double cached_ = 0.0;
  bool has_cached_ = false;
};

}  // namespace dpz
