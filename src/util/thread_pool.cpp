#include "util/thread_pool.h"

#include <algorithm>
#include <exception>
#include <string>

#include "obs/log.h"
#include "obs/trace.h"
#include "util/error.h"
#include "util/annotated_mutex.h"
#include "util/resource.h"

namespace dpz {

namespace {

// Depth of parallel_for bodies running on this thread (any pool). Nested
// calls see a non-zero depth and execute inline, which both prevents
// fork/join self-deadlock and keeps the worker set at its configured
// size when an outer loop (e.g. chunked frames) fans out over code that
// itself calls parallel_for (PCA, DCT, quantization).
thread_local int t_parallel_depth = 0;

struct DepthGuard {
  DepthGuard() { ++t_parallel_depth; }
  ~DepthGuard() { --t_parallel_depth; }
  DepthGuard(const DepthGuard&) = delete;
  DepthGuard& operator=(const DepthGuard&) = delete;
};

// The calling thread's active pool (see PoolScope).
thread_local const ThreadPool* t_active_pool = nullptr;

unsigned default_thread_count() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw != 0 ? hw : 1;
}

}  // namespace

// Fork/join state shared between parallel_for and the workers. All
// fields are guarded by `m` (and annotated so a Clang -Wthread-safety
// build proves it); a job is published by bumping `generation` and
// consumed by every worker exactly once.
struct ThreadPool::Shared {
  Mutex m;
  CondVar job_cv;   // workers wait for a new generation
  CondVar done_cv;  // the caller waits for remaining == 0
  std::uint64_t generation DPZ_GUARDED_BY(m) = 0;
  bool stop DPZ_GUARDED_BY(m) = false;

  // Current job: participant p owns [begin + p*chunk, begin + (p+1)*chunk)
  // clamped to end. Participant 0 is the calling thread.
  const std::function<void(std::size_t)>* body DPZ_GUARDED_BY(m) = nullptr;
  std::size_t begin DPZ_GUARDED_BY(m) = 0;
  std::size_t end DPZ_GUARDED_BY(m) = 0;
  std::size_t chunk DPZ_GUARDED_BY(m) = 0;
  // Workers that have not finished this job.
  unsigned remaining DPZ_GUARDED_BY(m) = 0;
  std::exception_ptr error DPZ_GUARDED_BY(m);
  // Trace-clock timestamp of job publication; 0 when telemetry was off at
  // publish time. Lets each participant attribute queue-wait (publication
  // to chunk start) separately from run time in its pool_task span.
  std::uint64_t publish_ns DPZ_GUARDED_BY(m) = 0;
  // The publishing thread's resource governor (null when ungoverned):
  // workers adopt it for their chunk so governed charges and cooperative
  // cancellation checkpoints cross the fork. The shared_ptr keeps the
  // governor alive for the job even though the publisher also holds it.
  std::shared_ptr<const ResourceGovernor> governor DPZ_GUARDED_BY(m);
};

namespace {

// Records one pool_task span with queue-wait attribution. `publish_ns`
// may be 0 (telemetry was off when the job was published) — then the
// wait is unknown and the span carries no attribution.
void record_pool_task(std::uint64_t publish_ns, std::uint64_t start_ns,
                      std::uint64_t end_ns) {
  const std::uint64_t wait =
      publish_ns != 0 && start_ns > publish_ns
          ? start_ns - publish_ns
          : (publish_ns != 0 ? 0 : obs::TraceRecorder::kNoWait);
  obs::TraceRecorder::instance().record(obs::Span::kPoolTask, start_ns,
                                        end_ns - start_ns, wait);
}

// Breadcrumb for a pool chunk that died on an exception. Called inside
// the catch scope so the in-flight exception can be classified; a
// governance abort keeps its own status code (its checkpoint already
// logged the primary event at the throw site).
void log_pool_task_error() {
  StatusCode status = StatusCode::kInternal;
  std::string what;
  try {
    throw;
  } catch (const Error& e) {
    status = e.code();
    what = e.what();
  } catch (const std::exception& e) {
    what = e.what();
  } catch (...) {
    what = "unknown exception";
  }
  obs::log_error(obs::Event::kPoolTaskError, status, {}, what);
}

}  // namespace

ThreadPool::ThreadPool(unsigned threads)
    : thread_count_(threads != 0 ? threads : default_thread_count()),
      shared_(std::make_unique<Shared>()) {
  workers_.reserve(thread_count_ - 1);
  for (unsigned w = 1; w < thread_count_; ++w)
    workers_.emplace_back([this, w] { worker_main(w); });
}

ThreadPool::~ThreadPool() {
  {
    const MutexLock lock(shared_->m);
    shared_->stop = true;
  }
  shared_->job_cv.notify_all();
  for (auto& t : workers_) t.join();
}

void ThreadPool::worker_main(unsigned index) const {
  Shared& s = *shared_;
  std::uint64_t seen = 0;
  for (;;) {
    const std::function<void(std::size_t)>* body = nullptr;
    std::size_t lo = 0;
    std::size_t hi = 0;
    std::uint64_t publish_ns = 0;
    std::shared_ptr<const ResourceGovernor> governor;
    {
      // Predicate spelled out in the wait loop (not a lambda) so the
      // thread-safety analysis sees the guarded reads under the lock.
      const MutexLock lock(s.m);
      while (!s.stop && s.generation == seen) s.job_cv.wait(s.m);
      if (s.stop) return;
      seen = s.generation;
      body = s.body;
      lo = std::min(s.end, s.begin + index * s.chunk);
      hi = std::min(s.end, lo + s.chunk);
      publish_ns = s.publish_ns;
      governor = s.governor;
    }
    if (lo < hi) {
      const bool traced = obs::telemetry_enabled();
      const std::uint64_t start_ns =
          traced ? obs::TraceRecorder::now_ns() : 0;
      const DepthGuard guard;
      // Adopt the publisher's governor so body-internal charges, nested
      // polls, and the per-index checkpoint below all see it. A tripped
      // limit aborts this chunk between strip indices (bounded latency)
      // and surfaces through the normal first-exception-wins channel.
      const detail::GovernorAdopt adopt(governor.get());
      try {
        for (std::size_t i = lo; i < hi; ++i) {
          if (governor != nullptr) governor->checkpoint();
          (*body)(i);
        }
      } catch (...) {
        log_pool_task_error();
        const MutexLock lock(s.m);
        if (!s.error) s.error = std::current_exception();
      }
      if (traced)
        record_pool_task(publish_ns, start_ns,
                         obs::TraceRecorder::now_ns());
    }
    {
      const MutexLock lock(s.m);
      if (--s.remaining == 0) s.done_cv.notify_all();
    }
  }
}

void ThreadPool::parallel_for(
    std::size_t begin, std::size_t end,
    const std::function<void(std::size_t)>& body) const {
  if (begin >= end) return;
  const std::size_t n = end - begin;

  // Serial paths: single-participant pools, tiny ranges, and nested
  // calls (the calling thread is already one of a pool's participants).
  // The thread-local governor is already in place here; poll it between
  // indices so single-threaded loops honor the same abort-latency bound
  // as pool chunks.
  if (workers_.empty() || n == 1 || t_parallel_depth > 0) {
    const DepthGuard guard;
    const ResourceGovernor* governor = current_governor();
    for (std::size_t i = begin; i < end; ++i) {
      if (governor != nullptr) governor->checkpoint();
      body(i);
    }
    return;
  }

  // One loop at a time: concurrent top-level callers queue here.
  const MutexLock run_lock(run_mutex_);

  Shared& s = *shared_;
  const auto participants =
      static_cast<unsigned>(std::min<std::size_t>(thread_count_, n));
  // Snapshots of job fields for participant 0's lock-free use below:
  // after publication the workers own the shared state, and even
  // this-thread-wrote-it reads back from `s` would need the lock.
  std::size_t chunk = 0;
  std::uint64_t publish_ns = 0;
  {
    const MutexLock lock(s.m);
    s.body = &body;
    s.begin = begin;
    s.end = end;
    s.chunk = (n + participants - 1) / participants;
    s.remaining = static_cast<unsigned>(workers_.size());
    s.error = nullptr;
    s.publish_ns =
        obs::telemetry_enabled() ? obs::TraceRecorder::now_ns() : 0;
    s.governor = current_governor_shared();
    ++s.generation;
    chunk = s.chunk;
    publish_ns = s.publish_ns;
  }
  s.job_cv.notify_all();

  // The calling thread is participant 0 (its thread-local governor is
  // already installed; poll it between indices like the workers do).
  {
    const bool traced = obs::telemetry_enabled();
    const std::uint64_t start_ns =
        traced ? obs::TraceRecorder::now_ns() : 0;
    const DepthGuard guard;
    const ResourceGovernor* governor = current_governor();
    const std::size_t hi = std::min(end, begin + chunk);
    try {
      for (std::size_t i = begin; i < hi; ++i) {
        if (governor != nullptr) governor->checkpoint();
        body(i);
      }
    } catch (...) {
      log_pool_task_error();
      const MutexLock lock(s.m);
      if (!s.error) s.error = std::current_exception();
    }
    if (traced)
      record_pool_task(publish_ns, start_ns,
                       obs::TraceRecorder::now_ns());
  }

  std::exception_ptr error;
  {
    const MutexLock lock(s.m);
    while (s.remaining != 0) s.done_cv.wait(s.m);
    error = s.error;
    s.body = nullptr;
    s.governor = nullptr;
  }
  if (error) std::rethrow_exception(error);
}

bool ThreadPool::in_parallel_region() { return t_parallel_depth > 0; }

const ThreadPool& ThreadPool::global() {
  static const ThreadPool pool;
  return pool;
}

const ThreadPool& PoolScope::current() {
  const ThreadPool* pool = t_active_pool;
  return pool != nullptr ? *pool : ThreadPool::global();
}

const ThreadPool* PoolScope::exchange(const ThreadPool* pool) {
  const ThreadPool* previous = t_active_pool;
  t_active_pool = pool;
  return previous;
}

}  // namespace dpz
