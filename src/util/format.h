// Small formatting helpers shared by the bench harnesses: fixed-width
// numeric cells, human-readable byte counts, and simple table printing.
#pragma once

#include <cstdint>
#include <iomanip>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

namespace dpz {

/// Formats `value` with `digits` digits after the decimal point.
inline std::string fixed(double value, int digits) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(digits) << value;
  return os.str();
}

/// Formats `value` in scientific notation with `digits` mantissa digits,
/// matching the paper's "1.94E-1" style cells.
inline std::string scientific(double value, int digits) {
  std::ostringstream os;
  os << std::scientific << std::setprecision(digits) << std::uppercase
     << value;
  return os.str();
}

/// Human-readable byte count ("1.47 GB", "496 MB", ...).
inline std::string human_bytes(std::uint64_t bytes) {
  static const char* kUnits[] = {"B", "KB", "MB", "GB", "TB"};
  double v = static_cast<double>(bytes);
  int unit = 0;
  while (v >= 1024.0 && unit < 4) {
    v /= 1024.0;
    ++unit;
  }
  std::ostringstream os;
  os << std::fixed << std::setprecision(v < 10 ? 2 : (v < 100 ? 1 : 0)) << v
     << ' ' << kUnits[unit];
  return os.str();
}

/// Fixed-width ASCII table writer used by every table harness.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> header)
      : header_(std::move(header)) {}

  void add_row(std::vector<std::string> row) {
    rows_.push_back(std::move(row));
  }

  /// Renders the table to `out` with column auto-sizing.
  void print(std::ostream& out = std::cout) const {
    std::vector<std::size_t> widths(header_.size(), 0);
    auto widen = [&](const std::vector<std::string>& row) {
      for (std::size_t c = 0; c < row.size() && c < widths.size(); ++c)
        widths[c] = std::max(widths[c], row[c].size());
    };
    widen(header_);
    for (const auto& row : rows_) widen(row);

    auto print_row = [&](const std::vector<std::string>& row) {
      out << "|";
      for (std::size_t c = 0; c < widths.size(); ++c) {
        const std::string cell = c < row.size() ? row[c] : "";
        out << ' ' << cell << std::string(widths[c] - cell.size(), ' ')
            << " |";
      }
      out << '\n';
    };
    auto print_rule = [&] {
      out << "+";
      for (const std::size_t w : widths) out << std::string(w + 2, '-') << '+';
      out << '\n';
    };

    print_rule();
    print_row(header_);
    print_rule();
    for (const auto& row : rows_) print_row(row);
    print_rule();
  }

  /// Writes the same content as CSV (for plotting scripts).
  void write_csv(std::ostream& out) const {
    auto emit = [&](const std::vector<std::string>& row) {
      for (std::size_t c = 0; c < row.size(); ++c) {
        if (c) out << ',';
        out << row[c];
      }
      out << '\n';
    };
    emit(header_);
    for (const auto& row : rows_) emit(row);
  }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace dpz
