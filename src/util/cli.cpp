#include "util/cli.h"

#include <algorithm>
#include <cstdlib>

#include "util/error.h"

namespace dpz {

namespace {

bool looks_like_flag(const std::string& arg) {
  return arg.size() > 2 && arg[0] == '-' && arg[1] == '-';
}

bool parse_bool_text(const std::string& text, bool fallback) {
  if (text.empty()) return true;  // bare `--flag` means true
  if (text == "1" || text == "true" || text == "yes" || text == "on")
    return true;
  if (text == "0" || text == "false" || text == "no" || text == "off")
    return false;
  return fallback;
}

}  // namespace

CliArgs::CliArgs(int argc, const char* const* argv,
                 std::vector<std::string> known_flags) {
  DPZ_REQUIRE(argc >= 1, "argc must include the program name");
  program_ = argv[0];

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (!looks_like_flag(arg)) {
      positional_.push_back(arg);
      continue;
    }

    std::string name = arg.substr(2);
    std::string value;
    const auto eq = name.find('=');
    if (eq != std::string::npos) {
      value = name.substr(eq + 1);
      name = name.substr(0, eq);
    } else if (i + 1 < argc && !looks_like_flag(argv[i + 1])) {
      // `--name value` form. Boolean flags written bare before a positional
      // argument are ambiguous; harnesses use `--name=value` when in doubt.
      value = argv[++i];
    }

    if (!known_flags.empty() &&
        std::find(known_flags.begin(), known_flags.end(), name) ==
            known_flags.end()) {
      throw InvalidArgument("unknown flag --" + name + " (program " +
                            program_ + ")");
    }
    flags_[name] = value;
  }
}

bool CliArgs::has(const std::string& name) const {
  return flags_.count(name) != 0;
}

std::string CliArgs::get_string(const std::string& name,
                                const std::string& fallback) const {
  const auto it = flags_.find(name);
  return it == flags_.end() ? fallback : it->second;
}

std::int64_t CliArgs::get_int(const std::string& name,
                              std::int64_t fallback) const {
  const auto it = flags_.find(name);
  if (it == flags_.end() || it->second.empty()) return fallback;
  return std::strtoll(it->second.c_str(), nullptr, 10);
}

double CliArgs::get_double(const std::string& name, double fallback) const {
  const auto it = flags_.find(name);
  if (it == flags_.end() || it->second.empty()) return fallback;
  return std::strtod(it->second.c_str(), nullptr);
}

bool CliArgs::get_bool(const std::string& name, bool fallback) const {
  const auto it = flags_.find(name);
  if (it == flags_.end()) return fallback;
  return parse_bool_text(it->second, fallback);
}

}  // namespace dpz
