#include "dsp/fft.h"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "simd/simd.h"
#include "util/error.h"

namespace dpz {

namespace {

// std::complex guarantees array-oriented access ([complex.numbers.general]:
// reinterpret_cast<double(&)[2]>(z) is valid), so an interleaved
// complex<double> buffer can be handed to the double-pair simd kernels
// without a copy. These two helpers are the only sanctioned casts in dsp
// (tools/analyze "reinterpret-cast" allowlist).
double* as_doubles(std::complex<double>* p) {
  return reinterpret_cast<double*>(p);
}
const double* as_doubles(const std::complex<double>* p) {
  return reinterpret_cast<const double*>(p);
}

}  // namespace

namespace {

// Builds the bit-reversal permutation for length n (power of two).
std::vector<std::size_t> make_bitrev(std::size_t n) {
  std::vector<std::size_t> rev(n, 0);
  std::size_t bits = 0;
  while ((std::size_t{1} << bits) < n) ++bits;
  for (std::size_t i = 0; i < n; ++i) {
    std::size_t r = 0;
    for (std::size_t b = 0; b < bits; ++b)
      if (i & (std::size_t{1} << b)) r |= std::size_t{1} << (bits - 1 - b);
    rev[i] = r;
  }
  return rev;
}

// Forward twiddles for all butterfly stages: exp(-2*pi*i*k/len) packed
// stage after stage (len = 2, 4, ..., n), total n-1 entries.
std::vector<std::complex<double>> make_twiddles(std::size_t n) {
  std::vector<std::complex<double>> tw;
  tw.reserve(n);
  for (std::size_t len = 2; len <= n; len <<= 1) {
    const double step = -2.0 * std::numbers::pi / static_cast<double>(len);
    for (std::size_t k = 0; k < len / 2; ++k)
      tw.emplace_back(std::cos(step * static_cast<double>(k)),
                      std::sin(step * static_cast<double>(k)));
  }
  return tw;
}

// Radix-2 kernel shared by the plan paths. `rev` and `tw` must match n.
void fft_pow2_kernel(std::complex<double>* a, std::size_t n,
                     const std::vector<std::size_t>& rev,
                     const std::vector<std::complex<double>>& tw,
                     bool inverse) {
  for (std::size_t i = 0; i < n; ++i)
    if (i < rev[i]) std::swap(a[i], a[rev[i]]);

  const simd::KernelTable& ops = simd::kernels();
  double* ad = as_doubles(a);
  std::size_t tw_base = 0;
  for (std::size_t len = 2; len <= n; len <<= 1) {
    ops.radix2_stage(ad, n, len, as_doubles(tw.data() + tw_base), inverse);
    tw_base += len / 2;
  }

  if (inverse) ops.scale(1.0 / static_cast<double>(n), ad, 2 * n);
}

}  // namespace

std::size_t next_power_of_two(std::size_t n) {
  std::size_t p = 1;
  while (p < n) {
    DPZ_REQUIRE(p <= (SIZE_MAX >> 1), "next_power_of_two overflow");
    p <<= 1;
  }
  return p;
}

FftPlan::FftPlan(std::size_t n) : n_(n), is_pow2_(is_power_of_two(n)) {
  DPZ_REQUIRE(n >= 1, "FFT length must be >= 1");
  if (n_ == 1) return;

  if (is_pow2_) {
    bitrev_ = make_bitrev(n_);
    twiddles_ = make_twiddles(n_);
    return;
  }

  // Bluestein: x_hat[k] = w_k * sum_n x[n] w_n * conj(w_{k-n}) where
  // w_k = exp(-i*pi*k^2/n); the sum is a linear convolution embedded in a
  // power-of-two circular convolution of length >= 2n-1.
  conv_n_ = next_power_of_two(2 * n_ - 1);
  bitrev_ = make_bitrev(conv_n_);
  twiddles_ = make_twiddles(conv_n_);

  chirp_.resize(n_);
  for (std::size_t k = 0; k < n_; ++k) {
    // Reduce k^2 mod 2n before multiplying to keep the angle accurate for
    // large lengths (k*k overflows the double mantissa around 2^26).
    const std::size_t k2 = (k * k) % (2 * n_);
    const double angle =
        -std::numbers::pi * static_cast<double>(k2) / static_cast<double>(n_);
    chirp_[k] = {std::cos(angle), std::sin(angle)};
  }

  std::vector<std::complex<double>> b(conv_n_, {0.0, 0.0});
  b[0] = std::conj(chirp_[0]);
  for (std::size_t k = 1; k < n_; ++k) {
    b[k] = std::conj(chirp_[k]);
    b[conv_n_ - k] = std::conj(chirp_[k]);
  }
  fft_pow2_kernel(b.data(), conv_n_, bitrev_, twiddles_, /*inverse=*/false);
  chirp_fft_ = std::move(b);
}

void FftPlan::execute(std::vector<std::complex<double>>& data,
                      bool inverse) const {
  DPZ_REQUIRE(data.size() == n_, "FFT buffer length must match plan size");
  if (n_ == 1) return;
  if (is_pow2_) {
    execute_pow2(data, inverse);
  } else {
    execute_bluestein(data, inverse);
  }
}

void FftPlan::execute_pow2(std::vector<std::complex<double>>& data,
                           bool inverse) const {
  fft_pow2_kernel(data.data(), n_, bitrev_, twiddles_, inverse);
}

void FftPlan::execute_bluestein(std::vector<std::complex<double>>& data,
                                bool inverse) const {
  // Inverse DFT via conjugation: IDFT(x) = conj(DFT(conj(x))) / n.
  if (inverse)
    for (auto& v : data) v = std::conj(v);

  const simd::KernelTable& ops = simd::kernels();
  // Per-thread scratch: a block matrix runs thousands of same-length
  // transforms, so reuse the convolution buffer instead of allocating
  // and zero-filling conv_n_ complexes per call. Only the zero padding
  // beyond n_ needs refreshing — the cmul below overwrites [0, n_).
  thread_local std::vector<std::complex<double>> scratch;
  scratch.resize(conv_n_);
  std::vector<std::complex<double>>& a = scratch;
  std::fill(a.begin() + static_cast<std::ptrdiff_t>(n_), a.end(),
            std::complex<double>{0.0, 0.0});
  ops.cmul(as_doubles(data.data()), as_doubles(chirp_.data()),
           as_doubles(a.data()), n_);

  fft_pow2_kernel(a.data(), conv_n_, bitrev_, twiddles_, /*inverse=*/false);
  ops.cmul(as_doubles(a.data()), as_doubles(chirp_fft_.data()),
           as_doubles(a.data()), conv_n_);
  fft_pow2_kernel(a.data(), conv_n_, bitrev_, twiddles_, /*inverse=*/true);

  ops.cmul(as_doubles(a.data()), as_doubles(chirp_.data()),
           as_doubles(data.data()), n_);

  if (inverse) {
    const double scale = 1.0 / static_cast<double>(n_);
    for (auto& v : data) v = std::conj(v) * scale;
  }
}

void fft(std::vector<std::complex<double>>& data, bool inverse) {
  const FftPlan plan(data.size());
  plan.execute(data, inverse);
}

}  // namespace dpz
