#include "dsp/dct.h"

#include <cmath>
#include <numbers>

#include "simd/simd.h"
#include "util/error.h"

namespace dpz {

DctPlan::DctPlan(std::size_t n)
    : n_(n),
      fft_(n),
      half_fft_(n % 2 == 0 && n >= 2 ? n / 2 : 1),
      scale0_(std::sqrt(1.0 / static_cast<double>(n))),
      scale_(std::sqrt(2.0 / static_cast<double>(n))) {
  DPZ_REQUIRE(n >= 1, "DCT length must be >= 1");
  shift_.resize(n_);
  for (std::size_t k = 0; k < n_; ++k) {
    const double angle = -std::numbers::pi * static_cast<double>(k) /
                         (2.0 * static_cast<double>(n_));
    shift_[k] = {std::cos(angle), std::sin(angle)};
  }
  if (n_ % 2 == 0) {
    rt_.resize(n_ / 2 + 1);
    for (std::size_t k = 0; k <= n_ / 2; ++k) {
      const double angle = -2.0 * std::numbers::pi *
                           static_cast<double>(k) /
                           static_cast<double>(n_);
      rt_[k] = {std::cos(angle), std::sin(angle)};
    }
  }
}

void DctPlan::forward(std::span<const double> in,
                      std::span<double> out) const {
  DPZ_REQUIRE(in.size() == n_ && out.size() == n_,
              "DCT buffer length must match plan size");
  if (n_ == 1) {
    out[0] = in[0];
    return;
  }

  // Makhoul reordering: v = [x0, x2, x4, ..., x5, x3, x1]. The loops
  // below fill every slot, so the per-thread scratch needs no zeroing.
  thread_local std::vector<std::complex<double>> v;
  v.resize(n_);
  const std::size_t half = (n_ + 1) / 2;
  if (n_ % 2 == 0) {
    // Real-input shortcut: pack adjacent reordered samples into n/2
    // complexes, transform once at half length, then untangle. With
    // E/O the DFTs of the even/odd-position subsequences of the packed
    // stream, V[k] = E[k] + w^k O[k] and V[n-k] = conj(V[k]).
    const std::size_t h = n_ / 2;
    auto reordered = [&](std::size_t p) {
      return p < half ? in[2 * p] : in[2 * (n_ - 1 - p) + 1];
    };
    thread_local std::vector<std::complex<double>> z;
    z.resize(h);
    for (std::size_t j = 0; j < h; ++j)
      z[j] = {reordered(2 * j), reordered(2 * j + 1)};
    half_fft_.execute(z, /*inverse=*/false);
    const std::complex<double> minus_half_i(0.0, -0.5);
    for (std::size_t k = 0; k <= h; ++k) {
      const std::complex<double> zk = z[k % h];
      const std::complex<double> znk = std::conj(z[(h - k) % h]);
      const std::complex<double> even = 0.5 * (zk + znk);
      const std::complex<double> odd = minus_half_i * (zk - znk);
      const std::complex<double> val = even + rt_[k] * odd;
      v[k] = val;
      if (k != 0 && k != h) v[n_ - k] = std::conj(val);
    }
  } else {
    for (std::size_t i = 0; i < half; ++i) v[i] = in[2 * i];
    for (std::size_t i = 0; i < n_ / 2; ++i) v[n_ - 1 - i] = in[2 * i + 1];

    fft_.execute(v, /*inverse=*/false);
  }

  // Unnormalized DCT-II coefficient: C[k] = Re(exp(-i*pi*k/2n) * V[k]).
  // The kernel computes the real part of the product directly with the
  // same per-part rounding as the std::complex formula. The casts ride
  // on std::complex's array-oriented access guarantee (see fft.cpp).
  out[0] = v[0].real() * scale0_;
  simd::kernels().cmul_real_scale(
      reinterpret_cast<const double*>(shift_.data() + 1),
      reinterpret_cast<const double*>(v.data() + 1), scale_, out.data() + 1,
      n_ - 1);
}

void DctPlan::inverse(std::span<const double> in,
                      std::span<double> out) const {
  DPZ_REQUIRE(in.size() == n_ && out.size() == n_,
              "DCT buffer length must match plan size");
  if (n_ == 1) {
    out[0] = in[0];
    return;
  }

  // Undo the orthonormal scaling to recover the unnormalized C[k], then
  // invert the Makhoul construction: V[k] = exp(i*pi*k/2n)(C[k] - iC[n-k]).
  std::vector<std::complex<double>> v(n_);
  v[0] = std::complex<double>(in[0] / scale0_, 0.0);
  for (std::size_t k = 1; k < n_; ++k) {
    const double ck = in[k] / scale_;
    const double cnk = in[n_ - k] / scale_;
    v[k] = std::conj(shift_[k]) * std::complex<double>(ck, -cnk);
  }

  fft_.execute(v, /*inverse=*/true);

  const std::size_t half = (n_ + 1) / 2;
  std::vector<double> tmp(n_);
  for (std::size_t i = 0; i < half; ++i) tmp[2 * i] = v[i].real();
  for (std::size_t i = 0; i < n_ / 2; ++i)
    tmp[2 * i + 1] = v[n_ - 1 - i].real();
  for (std::size_t i = 0; i < n_; ++i) out[i] = tmp[i];
}

std::vector<double> dct_naive_forward(std::span<const double> x) {
  const std::size_t n = x.size();
  DPZ_REQUIRE(n >= 1, "DCT length must be >= 1");
  std::vector<double> out(n);
  const double norm0 = std::sqrt(1.0 / static_cast<double>(n));
  const double norm = std::sqrt(2.0 / static_cast<double>(n));
  for (std::size_t k = 0; k < n; ++k) {
    double sum = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      sum += x[i] * std::cos(std::numbers::pi *
                             (2.0 * static_cast<double>(i) + 1.0) *
                             static_cast<double>(k) /
                             (2.0 * static_cast<double>(n)));
    }
    out[k] = sum * (k == 0 ? norm0 : norm);
  }
  return out;
}

std::vector<double> dct_naive_inverse(std::span<const double> x) {
  const std::size_t n = x.size();
  DPZ_REQUIRE(n >= 1, "DCT length must be >= 1");
  std::vector<double> out(n);
  const double norm0 = std::sqrt(1.0 / static_cast<double>(n));
  const double norm = std::sqrt(2.0 / static_cast<double>(n));
  for (std::size_t i = 0; i < n; ++i) {
    double sum = x[0] * norm0;
    for (std::size_t k = 1; k < n; ++k) {
      sum += x[k] * norm *
             std::cos(std::numbers::pi *
                      (2.0 * static_cast<double>(i) + 1.0) *
                      static_cast<double>(k) /
                      (2.0 * static_cast<double>(n)));
    }
    out[i] = sum;
  }
  return out;
}

void dct_2d_forward(std::span<const double> in, std::span<double> out,
                    std::size_t rows, std::size_t cols) {
  DPZ_REQUIRE(in.size() == rows * cols && out.size() == rows * cols,
              "2-D DCT buffer size mismatch");
  const DctPlan row_plan(cols);
  const DctPlan col_plan(rows);

  // Rows first.
  std::vector<double> tmp(rows * cols);
  for (std::size_t r = 0; r < rows; ++r)
    row_plan.forward(in.subspan(r * cols, cols),
                     std::span<double>(tmp).subspan(r * cols, cols));

  // Then columns (gather/scatter through a contiguous scratch column).
  std::vector<double> col(rows), col_out(rows);
  for (std::size_t c = 0; c < cols; ++c) {
    for (std::size_t r = 0; r < rows; ++r) col[r] = tmp[r * cols + c];
    col_plan.forward(col, col_out);
    for (std::size_t r = 0; r < rows; ++r) out[r * cols + c] = col_out[r];
  }
}

void dct_2d_inverse(std::span<const double> in, std::span<double> out,
                    std::size_t rows, std::size_t cols) {
  DPZ_REQUIRE(in.size() == rows * cols && out.size() == rows * cols,
              "2-D DCT buffer size mismatch");
  const DctPlan row_plan(cols);
  const DctPlan col_plan(rows);

  std::vector<double> tmp(rows * cols);
  std::vector<double> col(rows), col_out(rows);
  for (std::size_t c = 0; c < cols; ++c) {
    for (std::size_t r = 0; r < rows; ++r) col[r] = in[r * cols + c];
    col_plan.inverse(col, col_out);
    for (std::size_t r = 0; r < rows; ++r) tmp[r * cols + c] = col_out[r];
  }
  for (std::size_t r = 0; r < rows; ++r)
    row_plan.inverse(std::span<const double>(tmp).subspan(r * cols, cols),
                     out.subspan(r * cols, cols));
}

}  // namespace dpz
