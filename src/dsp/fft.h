// Complex FFT substrate.
//
// FFTW is not available in this environment, so DPZ carries its own FFT:
// an iterative radix-2 Cooley-Tukey kernel for power-of-two lengths and
// Bluestein's chirp-z algorithm for arbitrary lengths (needed because block
// sizes produced by the divisor-pair decomposition are not always powers of
// two, e.g. CESM-ATM blocks of 3600 points).
#pragma once

#include <complex>
#include <cstddef>
#include <vector>

namespace dpz {

/// Precomputed plan for repeated transforms of one length.
///
/// Plans are immutable after construction and safe to share across threads
/// (execute() only reads plan state and writes the caller's buffer).
class FftPlan {
 public:
  /// Builds a plan for length `n` (n >= 1).
  explicit FftPlan(std::size_t n);

  [[nodiscard]] std::size_t size() const { return n_; }

  /// In-place DFT of `data` (length must equal size()).
  /// `inverse` selects the inverse transform, scaled by 1/n so that
  /// forward followed by inverse is the identity.
  void execute(std::vector<std::complex<double>>& data, bool inverse) const;

 private:
  void execute_pow2(std::vector<std::complex<double>>& data,
                    bool inverse) const;
  void execute_bluestein(std::vector<std::complex<double>>& data,
                         bool inverse) const;

  std::size_t n_;
  bool is_pow2_;
  // Radix-2 machinery (twiddles for the plan length or the Bluestein
  // convolution length).
  std::size_t conv_n_ = 0;  // power-of-two convolution length (Bluestein)
  std::vector<std::size_t> bitrev_;             // bit-reversal permutation
  std::vector<std::complex<double>> twiddles_;  // forward twiddle table
  // Bluestein chirp data.
  std::vector<std::complex<double>> chirp_;      // w_k = exp(-i*pi*k^2/n)
  std::vector<std::complex<double>> chirp_fft_;  // FFT of padded conj chirp
};

/// One-shot convenience wrapper (builds a plan internally).
void fft(std::vector<std::complex<double>>& data, bool inverse = false);

/// True when n is a power of two.
constexpr bool is_power_of_two(std::size_t n) {
  return n != 0 && (n & (n - 1)) == 0;
}

/// Smallest power of two >= n.
std::size_t next_power_of_two(std::size_t n);

}  // namespace dpz
