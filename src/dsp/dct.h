// Orthonormal DCT-II / DCT-III (Stage 1 of the DPZ pipeline).
//
// The paper's first retrieval stage applies DCT-II to each decomposed
// block (SS IV-A); because the transform matrix A is orthogonal
// (A^T = A^-1), the forward transform is z = A^T x and the inverse is
// x = A z, and Parseval's identity makes the energy-compaction ratio (ECR,
// Eq. 1) well defined on coefficients.
//
// Two execution paths are provided:
//  * DctPlan       — O(n log n) via Makhoul's single-length-n FFT method,
//                    used by the compressor;
//  * dct_naive_*   — O(n^2) direct evaluation, kept as the oracle the unit
//                    tests cross-validate against.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "dsp/fft.h"

namespace dpz {

/// Plan for repeated orthonormal DCTs of a fixed length.
///
/// Immutable after construction; safe to share across worker threads when
/// each thread uses its own scratch via the explicit-workspace overloads.
class DctPlan {
 public:
  explicit DctPlan(std::size_t n);

  [[nodiscard]] std::size_t size() const { return n_; }

  /// Forward orthonormal DCT-II: out[k] = s_k * sum x[i] cos(pi(2i+1)k/2n),
  /// s_0 = sqrt(1/n), s_k = sqrt(2/n). `in` and `out` may alias.
  void forward(std::span<const double> in, std::span<double> out) const;

  /// Inverse transform (orthonormal DCT-III). `in` and `out` may alias.
  void inverse(std::span<const double> in, std::span<double> out) const;

 private:
  std::size_t n_;
  FftPlan fft_;
  /// Even n only: the Makhoul-reordered sequence is REAL, so its length-n
  /// DFT falls out of the length-n/2 complex DFT of adjacent sample pairs
  /// plus an O(n) untangling pass — roughly half the butterfly work of
  /// the full-length transform. Odd n (and the inverse, whose spectrum
  /// input is complex) keep using `fft_`.
  FftPlan half_fft_;
  std::vector<std::complex<double>> shift_;  // exp(-i*pi*k/(2n))
  std::vector<std::complex<double>> rt_;     // exp(-2*pi*i*k/n), k in [0, n/2]
  double scale0_;                            // sqrt(1/n)
  double scale_;                             // sqrt(2/n)
};

/// Reference O(n^2) orthonormal DCT-II.
std::vector<double> dct_naive_forward(std::span<const double> x);

/// Reference O(n^2) orthonormal DCT-III (inverse of dct_naive_forward).
std::vector<double> dct_naive_inverse(std::span<const double> x);

/// Separable 2-D orthonormal DCT-II over a rows x cols row-major matrix
/// (Z = A_M^T X A_N in the paper's notation). Used by analysis figures.
void dct_2d_forward(std::span<const double> in, std::span<double> out,
                    std::size_t rows, std::size_t cols);

/// Inverse of dct_2d_forward.
void dct_2d_inverse(std::span<const double> in, std::span<double> out,
                    std::size_t rows, std::size_t cols);

}  // namespace dpz
