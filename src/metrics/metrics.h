// Compression-quality metrics (SS III-A4 and SS V-B of the paper).
//
// The paper's headline comparison is rate-distortion: PSNR (dB, data-range
// based) against bit-rate (bits per datapoint, = 32 / CR for
// single-precision inputs). Table II additionally reports the mean
// range-relative error theta.
#pragma once

#include <cstdint>
#include <span>

namespace dpz {

struct ErrorStats {
  double mse = 0.0;            ///< mean squared error
  double psnr_db = 0.0;        ///< 20 log10(range) - 10 log10(MSE)
  double max_abs_error = 0.0;  ///< L-inf error
  double mean_rel_error = 0.0; ///< mean |x - x_hat| / range (theta)
  double value_range = 0.0;    ///< max - min of the original data
};

/// Full error statistics between an original and its reconstruction.
/// Lossless reconstruction reports psnr_db = +infinity.
ErrorStats compute_error_stats(std::span<const float> original,
                               std::span<const float> reconstructed);
ErrorStats compute_error_stats(std::span<const double> original,
                               std::span<const double> reconstructed);

/// Compression ratio: original bytes / compressed bytes.
inline double compression_ratio(std::uint64_t original_bytes,
                                std::uint64_t compressed_bytes) {
  return compressed_bytes == 0
             ? 0.0
             : static_cast<double>(original_bytes) /
                   static_cast<double>(compressed_bytes);
}

/// Bit-rate in bits per value for single-precision input data.
inline double bit_rate_f32(double cr) { return cr <= 0.0 ? 32.0 : 32.0 / cr; }

/// PSNR from an MSE and a data range (helper exposed for tests).
double psnr_from_mse(double mse, double range);

}  // namespace dpz
