#include "metrics/metrics.h"

#include <cmath>
#include <limits>

#include "util/error.h"

namespace dpz {

namespace {

template <typename T>
ErrorStats stats_impl(std::span<const T> original,
                      std::span<const T> reconstructed) {
  DPZ_REQUIRE(original.size() == reconstructed.size(),
              "error stats require equal-length inputs");
  DPZ_REQUIRE(!original.empty(), "error stats of empty input");

  double lo = static_cast<double>(original[0]);
  double hi = lo;
  double sq_sum = 0.0;
  double abs_sum = 0.0;
  double max_abs = 0.0;
  for (std::size_t i = 0; i < original.size(); ++i) {
    const double o = static_cast<double>(original[i]);
    const double r = static_cast<double>(reconstructed[i]);
    lo = std::min(lo, o);
    hi = std::max(hi, o);
    const double d = o - r;
    sq_sum += d * d;
    abs_sum += std::abs(d);
    max_abs = std::max(max_abs, std::abs(d));
  }

  ErrorStats s;
  s.value_range = hi - lo;
  s.mse = sq_sum / static_cast<double>(original.size());
  s.max_abs_error = max_abs;
  const double range = s.value_range > 0.0 ? s.value_range : 1.0;
  s.mean_rel_error = abs_sum / static_cast<double>(original.size()) / range;
  s.psnr_db = psnr_from_mse(s.mse, range);
  return s;
}

}  // namespace

double psnr_from_mse(double mse, double range) {
  if (mse <= 0.0) return std::numeric_limits<double>::infinity();
  if (range <= 0.0) range = 1.0;
  return 20.0 * std::log10(range) - 10.0 * std::log10(mse);
}

ErrorStats compute_error_stats(std::span<const float> original,
                               std::span<const float> reconstructed) {
  return stats_impl<float>(original, reconstructed);
}

ErrorStats compute_error_stats(std::span<const double> original,
                               std::span<const double> reconstructed) {
  return stats_impl<double>(original, reconstructed);
}

}  // namespace dpz
