// The telemetry master switch.
//
// Every recording site — span RAII guards, metric counters, the thread
// pool's task spans — checks exactly one relaxed atomic load before doing
// anything. With the switch off (the default), telemetry costs one
// predictable branch per site and touches no shared state, so it can stay
// compiled into release builds. With it on, spans append to per-thread
// buffers and counters do relaxed atomic adds; neither path ever touches
// the data being compressed, so archive bytes are identical either way
// (the determinism suite runs with tracing enabled as proof).
//
// The switch is a single atomic, not mutex-guarded state, so it needs no
// capability annotations (docs/STATIC_ANALYSIS.md); locked telemetry
// state lives behind util/annotated_mutex.h types (see obs/trace.h).
#pragma once

#include <atomic>

namespace dpz::obs {

namespace detail {
inline std::atomic<bool> g_telemetry{false};
}  // namespace detail

/// True when spans and counters are being recorded.
inline bool telemetry_enabled() {
  return detail::g_telemetry.load(std::memory_order_relaxed);
}

/// Flips the process-wide switch. Safe to call from any thread at any
/// time; sites racing with the flip either record or skip, both fine.
inline void set_telemetry_enabled(bool enabled) {
  detail::g_telemetry.store(enabled, std::memory_order_relaxed);
}

/// RAII toggle for tests and scoped CLI/C-API enablement: installs the
/// requested state, restores the previous one on destruction.
class ScopedTelemetry {
 public:
  explicit ScopedTelemetry(bool enabled) : previous_(telemetry_enabled()) {
    set_telemetry_enabled(enabled);
  }
  ~ScopedTelemetry() { set_telemetry_enabled(previous_); }

  ScopedTelemetry(const ScopedTelemetry&) = delete;
  ScopedTelemetry& operator=(const ScopedTelemetry&) = delete;

 private:
  bool previous_;
};

}  // namespace dpz::obs
