// Thread-safe span recorder emitting Chrome trace-event JSON.
//
// Spans are recorded into per-thread append buffers: each thread owns a
// buffer registered once (under the registry mutex) and then appends
// with only its own buffer lock, which is never contended on the hot
// path — contention exists only against a concurrent flush/clear. The
// output is the Chrome trace-event format ("X" complete events with
// microsecond timestamps), loadable in Perfetto (ui.perfetto.dev) or
// chrome://tracing; see docs/OBSERVABILITY.md.
//
// Timing uses the same steady clock as util/timer.h, expressed as
// nanoseconds since the recorder's epoch (first use in the process).
// Recording never perturbs compressed output: spans observe wall-clock
// and ids only, never data.
#pragma once

#include <cstdint>
#include <memory>
#include <ostream>
#include <string>
#include <vector>

#include "obs/log.h"
#include "obs/names.h"
#include "obs/telemetry.h"
#include "util/annotated_mutex.h"

namespace dpz::obs {

/// Process-wide span sink. All members are safe to call from any thread.
class TraceRecorder {
 public:
  /// Sentinel for "this span carries no queue-wait attribution".
  static constexpr std::uint64_t kNoWait = ~0ULL;

  static TraceRecorder& instance();

  /// Nanoseconds since the recorder epoch on the steady clock.
  static std::uint64_t now_ns();

  /// Appends a completed span for the calling thread. `queue_wait_ns`
  /// (when not kNoWait) is emitted as an args entry — used by the thread
  /// pool to attribute time between job publication and chunk start.
  void record(Span id, std::uint64_t start_ns, std::uint64_t dur_ns,
              std::uint64_t queue_wait_ns = kNoWait);

  /// Drops every recorded span (buffers stay registered).
  void clear();

  /// Number of spans currently held across all threads.
  [[nodiscard]] std::size_t event_count() const;

  /// Writes the Chrome trace-event JSON document.
  void write_json(std::ostream& out) const;
  [[nodiscard]] std::string json() const;

  /// Writes the JSON to a file; throws IoError-free — returns false on
  /// failure so flush paths never mask the primary operation's result.
  bool write_file(const std::string& path) const;

 private:
  struct Event {
    Span id;
    std::uint64_t start_ns;
    std::uint64_t dur_ns;
    std::uint64_t queue_wait_ns;
  };
  struct ThreadBuffer {
    /// The trace tid is fixed at registration (construction under the
    /// registry mutex), so readers need no lock for it.
    explicit ThreadBuffer(std::uint32_t id) : tid(id) {}
    Mutex m;
    const std::uint32_t tid;
    std::vector<Event> events DPZ_GUARDED_BY(m);
  };

  TraceRecorder() = default;

  ThreadBuffer& local_buffer();

  mutable Mutex registry_m_;
  std::vector<std::unique_ptr<ThreadBuffer>> buffers_
      DPZ_GUARDED_BY(registry_m_);
};

/// Trace-only RAII span, gated on the telemetry switch: when off,
/// construction and destruction are a relaxed load plus two TLS writes
/// each — no clock reads, no allocation, no shared state. The TLS
/// writes maintain the breadcrumb span stack (obs/log.h) so error
/// records can name the active spans even with telemetry off.
class ScopedSpan {
 public:
  explicit ScopedSpan(Span id)
      : id_(id),
        armed_(telemetry_enabled()),
        start_ns_(armed_ ? TraceRecorder::now_ns() : 0) {
    detail::span_push(id);
  }
  ~ScopedSpan() {
    detail::span_pop();
    if (armed_)
      TraceRecorder::instance().record(
          id_, start_ns_, TraceRecorder::now_ns() - start_ns_);
  }

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  Span id_;
  bool armed_;
  std::uint64_t start_ns_;
};

}  // namespace dpz::obs
