#include "obs/metrics.h"

#include <sstream>

namespace dpz::obs {

namespace {

// [lo, hi) value range covered by histogram bucket `i` (hi as text,
// "inf" for the open top bucket), for human-readable output.
std::uint64_t bucket_lo(std::size_t i) {
  return i == 0 ? 0 : (1ULL << (i - 1));
}

std::string bucket_hi(std::size_t i) {
  if (i == 0) return "1";
  if (i >= kHistBuckets - 1) return "inf";
  return std::to_string(1ULL << i);
}

}  // namespace

MetricsRegistry& MetricsRegistry::instance() {
  static MetricsRegistry* registry = new MetricsRegistry();  // never
  // destroyed: recording sites may fire during static destruction.
  return *registry;
}

std::size_t MetricsRegistry::bucket_of(std::uint64_t value) {
  if (value == 0) return 0;
  std::size_t bucket = 1;
  while (value >>= 1) ++bucket;
  return bucket < kHistBuckets ? bucket : kHistBuckets - 1;
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  MetricsSnapshot snap;
  for (std::size_t i = 0; i < kCounterCount; ++i)
    snap.counters[i] = counters_[i].load(std::memory_order_relaxed);
  for (std::size_t h = 0; h < kHistCount; ++h)
    for (std::size_t b = 0; b < kHistBuckets; ++b)
      snap.hists[h][b] = hists_[h][b].load(std::memory_order_relaxed);
  for (std::size_t h = 0; h < kHistCount; ++h)
    snap.hist_sums[h] = hist_sums_[h].load(std::memory_order_relaxed);
  return snap;
}

void MetricsRegistry::reset() {
  for (auto& c : counters_) c.store(0, std::memory_order_relaxed);
  for (auto& h : hists_)
    for (auto& b : h) b.store(0, std::memory_order_relaxed);
  for (auto& s : hist_sums_) s.store(0, std::memory_order_relaxed);
}

std::uint64_t MetricsSnapshot::hist_count(Hist id) const {
  std::uint64_t total = 0;
  for (const std::uint64_t b : hists[static_cast<std::size_t>(id)])
    total += b;
  return total;
}

std::string MetricsSnapshot::to_text() const {
  std::ostringstream out;
  for (std::size_t i = 0; i < kCounterCount; ++i)
    out << counter_name(static_cast<Counter>(i)) << ' ' << counters[i]
        << '\n';
  for (std::size_t h = 0; h < kHistCount; ++h) {
    const char* name = hist_name(static_cast<Hist>(h));
    out << name << "_count " << hist_count(static_cast<Hist>(h)) << '\n';
    out << name << "_sum " << hist_sums[h] << '\n';
    for (std::size_t b = 0; b < kHistBuckets; ++b) {
      if (hists[h][b] == 0) continue;
      out << name << "_bucket[" << bucket_lo(b) << ',' << bucket_hi(b)
          << ") " << hists[h][b] << '\n';
    }
  }
  return out.str();
}

std::string MetricsSnapshot::to_json() const {
  std::ostringstream out;
  out << "{\"counters\": {";
  for (std::size_t i = 0; i < kCounterCount; ++i) {
    out << (i == 0 ? "" : ", ") << '"'
        << counter_name(static_cast<Counter>(i)) << "\": " << counters[i];
  }
  out << "}, \"histograms\": {";
  for (std::size_t h = 0; h < kHistCount; ++h) {
    out << (h == 0 ? "" : ", ") << '"' << hist_name(static_cast<Hist>(h))
        << "\": {\"count\": " << hist_count(static_cast<Hist>(h))
        << ", \"sum\": " << hist_sums[h] << ", \"buckets\": [";
    // Sparse [bucket_index, count] pairs; bucket i covers [2^(i-1), 2^i).
    bool first = true;
    for (std::size_t b = 0; b < kHistBuckets; ++b) {
      if (hists[h][b] == 0) continue;
      out << (first ? "" : ", ") << '[' << b << ", " << hists[h][b] << ']';
      first = false;
    }
    out << "]}";
  }
  out << "}}";
  return out.str();
}

std::string MetricsSnapshot::to_prometheus() const {
  // Text exposition format. Counters carry the conventional _total
  // suffix; histograms emit the full cumulative bucket ladder (a scraper
  // needs every le value present on every scrape, so buckets are not
  // sparse here). Bucket i covers integer values in [2^(i-1), 2^i), so
  // its upper bound as an inclusive le label is 2^i - 1; the clamped top
  // bucket is +Inf.
  std::ostringstream out;
  for (std::size_t i = 0; i < kCounterCount; ++i) {
    const char* name = counter_name(static_cast<Counter>(i));
    out << "# HELP dpz_" << name << "_total "
        << counter_help(static_cast<Counter>(i)) << '\n';
    out << "# TYPE dpz_" << name << "_total counter\n";
    out << "dpz_" << name << "_total " << counters[i] << '\n';
  }
  for (std::size_t h = 0; h < kHistCount; ++h) {
    const char* name = hist_name(static_cast<Hist>(h));
    out << "# HELP dpz_" << name << ' '
        << hist_help(static_cast<Hist>(h)) << '\n';
    out << "# TYPE dpz_" << name << " histogram\n";
    std::uint64_t cumulative = 0;
    for (std::size_t b = 0; b + 1 < kHistBuckets; ++b) {
      cumulative += hists[h][b];
      out << "dpz_" << name << "_bucket{le=\""
          << (b == 0 ? 0 : (1ULL << b) - 1) << "\"} " << cumulative
          << '\n';
    }
    cumulative += hists[h][kHistBuckets - 1];
    out << "dpz_" << name << "_bucket{le=\"+Inf\"} " << cumulative << '\n';
    out << "dpz_" << name << "_sum " << hist_sums[h] << '\n';
    out << "dpz_" << name << "_count " << cumulative << '\n';
  }
  return out.str();
}

}  // namespace dpz::obs
