// Thread-safe per-stage time accumulation for pipeline accounting.
//
// Replaces the old StageTimer/ScopedStage hot path, which funneled
// durations through a shared std::map<std::string,double> — a latent
// data race once ScopedStage instances live inside parallel worker code,
// and a per-call std::string allocation besides. StageAccumulator is a
// fixed array of relaxed atomics indexed by the interned Span id, so any
// number of workers can accumulate into one instance concurrently
// (TSan-covered, tests/test_obs.cpp), and a scope costs two clock reads
// plus one atomic add.
//
// StageSpan always accumulates (stage accounting is part of DpzStats,
// the numbers behind Figure 9, and must not depend on the telemetry
// switch); it additionally emits a trace span when telemetry is on.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <string>

#include "obs/names.h"
#include "obs/trace.h"

namespace dpz::obs {

/// Fixed-slot nanosecond accumulator, one slot per Span id. Copy-free,
/// lock-free, safe for concurrent add() from any number of threads.
class StageAccumulator {
 public:
  void add(Span id, std::uint64_t ns) {
    ns_[static_cast<std::size_t>(id)].fetch_add(ns,
                                                std::memory_order_relaxed);
  }

  [[nodiscard]] double seconds(Span id) const {
    return 1e-9 * static_cast<double>(
                      ns_[static_cast<std::size_t>(id)].load(
                          std::memory_order_relaxed));
  }

  /// Non-zero buckets keyed by display name — the copyable aggregate the
  /// stats structs and bench harnesses consume.
  [[nodiscard]] std::map<std::string, double> buckets() const {
    std::map<std::string, double> out;
    for (std::size_t i = 0; i < kSpanCount; ++i) {
      const std::uint64_t ns = ns_[i].load(std::memory_order_relaxed);
      if (ns != 0)
        out[span_name(static_cast<Span>(i))] =
            1e-9 * static_cast<double>(ns);
    }
    return out;
  }

 private:
  std::array<std::atomic<std::uint64_t>, kSpanCount> ns_{};
};

/// RAII stage scope: always times into `sink`, and mirrors the interval
/// into the trace recorder when telemetry is enabled.
class StageSpan {
 public:
  StageSpan(StageAccumulator& sink, Span id)
      : sink_(sink), id_(id), start_ns_(TraceRecorder::now_ns()) {
    detail::span_push(id);
  }
  ~StageSpan() {
    detail::span_pop();
    const std::uint64_t dur = TraceRecorder::now_ns() - start_ns_;
    sink_.add(id_, dur);
    if (telemetry_enabled())
      TraceRecorder::instance().record(id_, start_ns_, dur);
  }

  StageSpan(const StageSpan&) = delete;
  StageSpan& operator=(const StageSpan&) = delete;

 private:
  StageAccumulator& sink_;
  Span id_;
  std::uint64_t start_ns_;
};

}  // namespace dpz::obs
