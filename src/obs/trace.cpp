#include "obs/trace.h"

#include <chrono>
#include <fstream>
#include <sstream>

namespace dpz::obs {

namespace {

using Clock = std::chrono::steady_clock;

Clock::time_point trace_epoch() {
  static const Clock::time_point epoch = Clock::now();
  return epoch;
}

// Microseconds with three decimals (nanosecond resolution), written
// without locale dependence.
void put_us(std::ostream& out, std::uint64_t ns) {
  out << ns / 1000 << '.';
  const auto frac = static_cast<unsigned>(ns % 1000);
  out << static_cast<char>('0' + frac / 100)
      << static_cast<char>('0' + (frac / 10) % 10)
      << static_cast<char>('0' + frac % 10);
}

}  // namespace

TraceRecorder& TraceRecorder::instance() {
  static TraceRecorder* recorder = new TraceRecorder();  // never destroyed:
  // worker threads may record during static destruction of other objects.
  return *recorder;
}

std::uint64_t TraceRecorder::now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                           trace_epoch())
          .count());
}

TraceRecorder::ThreadBuffer& TraceRecorder::local_buffer() {
  thread_local ThreadBuffer* buffer = nullptr;
  if (buffer == nullptr) {
    const MutexLock lock(registry_m_);
    buffers_.push_back(std::make_unique<ThreadBuffer>(
        static_cast<std::uint32_t>(buffers_.size())));
    buffer = buffers_.back().get();
  }
  return *buffer;
}

void TraceRecorder::record(Span id, std::uint64_t start_ns,
                           std::uint64_t dur_ns,
                           std::uint64_t queue_wait_ns) {
  ThreadBuffer& buffer = local_buffer();
  const MutexLock lock(buffer.m);
  buffer.events.push_back({id, start_ns, dur_ns, queue_wait_ns});
}

void TraceRecorder::clear() {
  const MutexLock lock(registry_m_);
  for (const auto& buffer : buffers_) {
    const MutexLock buffer_lock(buffer->m);
    buffer->events.clear();
  }
}

std::size_t TraceRecorder::event_count() const {
  const MutexLock lock(registry_m_);
  std::size_t n = 0;
  for (const auto& buffer : buffers_) {
    const MutexLock buffer_lock(buffer->m);
    n += buffer->events.size();
  }
  return n;
}

void TraceRecorder::write_json(std::ostream& out) const {
  const MutexLock lock(registry_m_);
  out << "{\n  \"displayTimeUnit\": \"ms\",\n  \"traceEvents\": [";
  bool first = true;
  for (const auto& buffer : buffers_) {
    const MutexLock buffer_lock(buffer->m);
    for (const Event& e : buffer->events) {
      out << (first ? "\n" : ",\n") << "    {\"name\": \""
          << span_name(e.id) << "\", \"cat\": \"" << span_category(e.id)
          << "\", \"ph\": \"X\", \"pid\": 1, \"tid\": " << buffer->tid
          << ", \"ts\": ";
      put_us(out, e.start_ns);
      out << ", \"dur\": ";
      put_us(out, e.dur_ns);
      if (e.queue_wait_ns != kNoWait) {
        out << ", \"args\": {\"queue_wait_us\": ";
        put_us(out, e.queue_wait_ns);
        out << "}";
      }
      out << "}";
      first = false;
    }
  }
  out << "\n  ]\n}\n";
}

std::string TraceRecorder::json() const {
  std::ostringstream out;
  write_json(out);
  return out.str();
}

bool TraceRecorder::write_file(const std::string& path) const {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return false;
  write_json(out);
  out.flush();
  return static_cast<bool>(out);
}

}  // namespace dpz::obs
