// Process-wide metrics registry: named counters and fixed-bucket
// histograms over the pipeline's operational events.
//
// The registry is a flat array of relaxed atomics indexed by the enums in
// names.h — recording is lock-free and allocation-free from any thread.
// Every recording site goes through the gated free helpers count() /
// observe(), which check the telemetry switch first; with telemetry off a
// site costs a single relaxed load. Snapshots copy the arrays out into a
// plain struct that renders to text or JSON for the CLI, the C API, and
// the bench harness.
//
// Concurrency contract: the registry is deliberately lock-free (relaxed
// atomics only), so it carries no capability annotations — there is no
// mutex for -Wthread-safety to track (docs/STATIC_ANALYSIS.md). Any
// future locked state here must come from util/annotated_mutex.h.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <string>

#include "obs/names.h"
#include "obs/telemetry.h"

namespace dpz::obs {

/// Point-in-time copy of the registry. Plain data: copyable, inspectable
/// without locks.
struct MetricsSnapshot {
  std::array<std::uint64_t, kCounterCount> counters{};
  std::array<std::array<std::uint64_t, kHistBuckets>, kHistCount> hists{};
  std::array<std::uint64_t, kHistCount> hist_sums{};

  [[nodiscard]] std::uint64_t counter(Counter id) const {
    return counters[static_cast<std::size_t>(id)];
  }
  /// Total observations across all buckets of one histogram.
  [[nodiscard]] std::uint64_t hist_count(Hist id) const;
  /// Sum of every observed value of one histogram.
  [[nodiscard]] std::uint64_t hist_sum(Hist id) const {
    return hist_sums[static_cast<std::size_t>(id)];
  }

  /// `name value` lines, counters then histogram buckets, for --metrics.
  [[nodiscard]] std::string to_text() const;
  /// One JSON object: {"counters": {...}, "histograms": {...}}.
  [[nodiscard]] std::string to_json() const;
  /// Prometheus text exposition format: counters as `dpz_<name>_total`,
  /// histograms as `dpz_<name>` with cumulative le-labeled buckets plus
  /// _sum and _count, each family preceded by # HELP / # TYPE lines
  /// (help text from names.h). See docs/OBSERVABILITY.md.
  [[nodiscard]] std::string to_prometheus() const;
};

/// The singleton holding the live atomics. Use the free helpers below for
/// recording; reach the registry directly only to snapshot or reset.
class MetricsRegistry {
 public:
  static MetricsRegistry& instance();

  void add(Counter id, std::uint64_t delta) {
    counters_[static_cast<std::size_t>(id)].fetch_add(
        delta, std::memory_order_relaxed);
  }

  void observe(Hist id, std::uint64_t value) {
    hists_[static_cast<std::size_t>(id)][bucket_of(value)].fetch_add(
        1, std::memory_order_relaxed);
    hist_sums_[static_cast<std::size_t>(id)].fetch_add(
        value, std::memory_order_relaxed);
  }

  [[nodiscard]] MetricsSnapshot snapshot() const;

  /// Zeroes every counter and bucket. Tests and the CLI use this to scope
  /// measurements; concurrent recorders simply land in the next window.
  void reset();

  /// log2 bucket index: 0 for value 0, otherwise 1 + floor(log2(value)).
  static std::size_t bucket_of(std::uint64_t value);

 private:
  MetricsRegistry() = default;

  std::array<std::atomic<std::uint64_t>, kCounterCount> counters_{};
  std::array<std::array<std::atomic<std::uint64_t>, kHistBuckets>,
             kHistCount>
      hists_{};
  std::array<std::atomic<std::uint64_t>, kHistCount> hist_sums_{};
};

/// Gated counter bump: no-op (one relaxed load) when telemetry is off.
inline void count(Counter id, std::uint64_t delta = 1) {
  if (telemetry_enabled()) MetricsRegistry::instance().add(id, delta);
}

/// Gated histogram observation: no-op when telemetry is off.
inline void observe(Hist id, std::uint64_t value) {
  if (telemetry_enabled()) MetricsRegistry::instance().observe(id, value);
}

}  // namespace dpz::obs
