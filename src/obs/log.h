// Leveled structured logging and the flight recorder.
//
// Every log site takes an interned Event id from names.h (lint rule 6 —
// no ad-hoc name strings) plus a small fixed context: status code,
// archive offset, frame index, section name, free-text detail. A record
// that fires lands in the calling thread's slot of the flight recorder —
// a bounded per-thread ring buffer that is always on — and, when a
// streaming sink is installed (CLI --log=out.jsonl), is also rendered as
// one JSON line.
//
// Cost contract (same discipline as obs/telemetry.h): a site whose level
// is below the threshold is one relaxed atomic load and a compare —
// nothing else — so info/trace sites can sit on hot paths and stay
// within the <500 ns disabled-site budget (tests/test_obs.cpp). Error
// and warn records are always captured (the default threshold), which is
// what makes the ring a flight recorder: when a decode fails, the last
// few hundred events are already there, no flag required.
//
// Breadcrumbs: ScopedSpan and StageSpan maintain a small thread-local
// span stack unconditionally (two TLS writes per scope), so an error
// record snapshots which spans were active on the failing thread. The
// most recent error-level record is additionally kept aside and rendered
// by last_error_report() — the backing for dpz_last_error_report and the
// CLI --diagnose flag. Logging never reads or writes the data being
// compressed, so output bytes are identical with any level installed
// (the determinism suite runs with logging on as proof).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

#include "obs/names.h"
#include "util/annotated_mutex.h"
#include "util/error.h"

namespace dpz::obs {

/// Severity of a log record. Lower value = more severe; a record fires
/// when its level is <= the installed threshold.
enum class LogLevel : std::uint8_t {
  kError = 0,  ///< an operation failed (always recorded by default)
  kWarn = 1,   ///< recovered anomaly, e.g. an absorbed injected fault
  kInfo = 2,   ///< coarse progress events (command dispatch, ...)
  kTrace = 3,  ///< everything
};

namespace detail {
/// The log threshold. Defaults to kWarn so the flight recorder captures
/// error and warn records with no configuration — "always on".
inline std::atomic<std::uint8_t> g_log_level{
    static_cast<std::uint8_t>(LogLevel::kWarn)};

/// Breadcrumb span stack for the calling thread. Maintained by every
/// ScopedSpan / StageSpan regardless of the telemetry switch; depth may
/// run past the fixed capacity (deep nesting), in which case the
/// overflowing ids are simply not named in breadcrumbs.
inline constexpr std::size_t kSpanStackCapacity = 16;
struct SpanStack {
  Span ids[kSpanStackCapacity];
  std::uint32_t depth = 0;
};
inline thread_local SpanStack t_span_stack;

inline void span_push(Span id) {
  SpanStack& s = t_span_stack;
  if (s.depth < kSpanStackCapacity) s.ids[s.depth] = id;
  ++s.depth;
}
inline void span_pop() { --t_span_stack.depth; }
}  // namespace detail

/// The installed threshold.
inline LogLevel log_level() {
  return static_cast<LogLevel>(
      detail::g_log_level.load(std::memory_order_relaxed));
}

/// True when a record at `level` would fire. This is the entire cost of
/// a disabled site.
inline bool log_enabled(LogLevel level) {
  return static_cast<std::uint8_t>(level) <=
         detail::g_log_level.load(std::memory_order_relaxed);
}

/// Installs a new threshold. Safe from any thread at any time; sites
/// racing with the flip either record or skip, both fine.
inline void set_log_level(LogLevel level) {
  detail::g_log_level.store(static_cast<std::uint8_t>(level),
                            std::memory_order_relaxed);
}

/// Parses "error" / "warn" / "info" / "trace" (case-sensitive). Returns
/// false (and leaves `out` alone) for anything else.
bool parse_log_level(std::string_view text, LogLevel* out);

/// Applies the DPZ_LOG_LEVEL environment variable when set to a valid
/// level name; returns true when it changed the threshold.
bool set_log_level_from_env();

/// RAII threshold override for tests and scoped CLI enablement.
class ScopedLogLevel {
 public:
  explicit ScopedLogLevel(LogLevel level) : previous_(log_level()) {
    set_log_level(level);
  }
  ~ScopedLogLevel() { set_log_level(previous_); }

  ScopedLogLevel(const ScopedLogLevel&) = delete;
  ScopedLogLevel& operator=(const ScopedLogLevel&) = delete;

 private:
  LogLevel previous_;
};

/// Optional structured context for a record. All fields are optional;
/// kNoValue / nullptr mean "not applicable" and are omitted from output.
struct LogContext {
  static constexpr std::uint64_t kNoValue = ~0ULL;
  std::uint64_t offset = kNoValue;  ///< failing archive byte offset
  std::uint64_t frame = kNoValue;   ///< failing frame index
  const char* section = nullptr;    ///< failing section name
};

/// Process-wide log sink: per-thread bounded rings (the flight recorder)
/// plus an optional streaming JSONL sink. All members are safe to call
/// from any thread.
class FlightRecorder {
 public:
  /// Records each thread can hold before the ring wraps.
  static constexpr std::size_t kRingCapacity = 256;
  /// Ring records rendered in a breadcrumb report.
  static constexpr std::size_t kReportRecords = 16;

  /// One fixed-size, trivially-copyable record — no allocation on the
  /// recording path once a thread's ring exists.
  struct Record {
    std::uint64_t ts_ns = 0;
    std::uint64_t offset = LogContext::kNoValue;
    std::uint64_t frame = LogContext::kNoValue;
    std::uint32_t tid = 0;
    Event event = Event::kErrorRaised;
    LogLevel level = LogLevel::kError;
    std::uint8_t status = 0;        ///< StatusCode of the failure
    std::uint8_t span_depth = 0;    ///< breadcrumb entries captured
    Span spans[detail::kSpanStackCapacity] = {};
    char section[24] = {};
    char detail[104] = {};
  };

  static FlightRecorder& instance();

  /// Appends a record for the calling thread (and streams it to the
  /// sink when one is installed). Call through log_event(), which
  /// applies the level threshold first.
  void record(Event event, LogLevel level, StatusCode status,
              const LogContext& ctx, std::string_view detail_text);

  /// Drops every record, including the saved last error.
  void clear();

  /// Records currently held across all threads.
  [[nodiscard]] std::size_t record_count() const;

  /// Every held record, oldest first (merged across threads by
  /// timestamp).
  [[nodiscard]] std::vector<Record> snapshot() const;

  /// Renders the rings as JSON lines, oldest record first.
  void write_jsonl(std::ostream& out) const;

  /// True when an error-level record has been captured since the last
  /// clear().
  [[nodiscard]] bool has_last_error() const;

  /// Multi-line human-readable report: the most recent error-level
  /// record (event, status, section, archive offset, frame index, span
  /// stack) followed by the trailing ring records as breadcrumbs.
  /// Empty when no error has been recorded.
  [[nodiscard]] std::string last_error_report() const;

  /// Installs (or, with nullptr, removes) the streaming JSONL sink.
  /// The stream must outlive the installation; use LogSinkScope.
  void set_sink(std::ostream* sink);

 private:
  struct ThreadRing;

  FlightRecorder() = default;

  ThreadRing& local_ring();

  mutable Mutex registry_m_;
  std::vector<std::unique_ptr<ThreadRing>> rings_
      DPZ_GUARDED_BY(registry_m_);

  mutable Mutex last_error_m_;
  Record last_error_ DPZ_GUARDED_BY(last_error_m_);
  bool has_last_error_ DPZ_GUARDED_BY(last_error_m_) = false;

  mutable Mutex sink_m_;
  std::ostream* sink_ DPZ_GUARDED_BY(sink_m_) = nullptr;
};

/// Emits one structured record when `level` passes the threshold. The
/// disabled path is a single relaxed load.
inline void log_event(Event event, LogLevel level, StatusCode status,
                      const LogContext& ctx = {},
                      std::string_view detail_text = {}) {
  if (!log_enabled(level)) return;
  FlightRecorder::instance().record(event, level, status, ctx,
                                    detail_text);
}

/// Error-level convenience: these fire under the default threshold, so
/// every error path leaves breadcrumbs with no configuration.
inline void log_error(Event event, StatusCode status,
                      const LogContext& ctx = {},
                      std::string_view detail_text = {}) {
  log_event(event, LogLevel::kError, status, ctx, detail_text);
}

/// RAII streaming sink: opens `path`, installs it, and (when the
/// threshold is still at the always-on default) raises the level to
/// kInfo so the file actually sees progress events. Both are restored
/// on destruction.
class LogSinkScope {
 public:
  explicit LogSinkScope(const std::string& path);
  ~LogSinkScope();

  /// False when the file could not be opened (nothing was installed).
  [[nodiscard]] bool ok() const { return ok_; }

  LogSinkScope(const LogSinkScope&) = delete;
  LogSinkScope& operator=(const LogSinkScope&) = delete;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
  bool ok_ = false;
};

}  // namespace dpz::obs
