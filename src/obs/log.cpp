#include "obs/log.h"

#include <algorithm>
#include <array>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>

#include "obs/trace.h"

namespace dpz::obs {

namespace {

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kError: return "error";
    case LogLevel::kWarn: return "warn";
    case LogLevel::kInfo: return "info";
    case LogLevel::kTrace: break;
  }
  return "trace";
}

// Microseconds with three decimals, matching the trace emitter so log
// and trace timestamps line up in one timeline.
void put_us(std::ostream& out, std::uint64_t ns) {
  out << ns / 1000 << '.';
  const auto frac = static_cast<unsigned>(ns % 1000);
  out << static_cast<char>('0' + frac / 100)
      << static_cast<char>('0' + (frac / 10) % 10)
      << static_cast<char>('0' + frac % 10);
}

// JSON string escape for the free-text fields (section names and details
// are ASCII messages; control characters are \u-escaped defensively).
void put_json_string(std::ostream& out, const char* text) {
  out << '"';
  for (const char* p = text; *p != '\0'; ++p) {
    const auto c = static_cast<unsigned char>(*p);
    if (c == '"' || c == '\\') {
      out << '\\' << *p;
    } else if (c < 0x20) {
      const char* hex = "0123456789abcdef";
      out << "\\u00" << hex[c >> 4] << hex[c & 0xF];
    } else {
      out << *p;
    }
  }
  out << '"';
}

void copy_truncated(char* dst, std::size_t cap, std::string_view src) {
  const std::size_t n = std::min(cap - 1, src.size());
  std::memcpy(dst, src.data(), n);
  dst[n] = '\0';
}

void write_record_json(std::ostream& out,
                       const FlightRecorder::Record& r) {
  out << "{\"ts_us\": ";
  put_us(out, r.ts_ns);
  out << ", \"tid\": " << r.tid << ", \"level\": \"" << level_name(r.level)
      << "\", \"event\": ";
  put_json_string(out, event_name(r.event));
  out << ", \"status\": \""
      << status_code_name(static_cast<StatusCode>(r.status)) << '"';
  if (r.offset != LogContext::kNoValue) out << ", \"offset\": " << r.offset;
  if (r.frame != LogContext::kNoValue) out << ", \"frame\": " << r.frame;
  if (r.section[0] != '\0') {
    out << ", \"section\": ";
    put_json_string(out, r.section);
  }
  if (r.span_depth != 0) {
    out << ", \"spans\": [";
    const std::uint8_t named = std::min<std::uint8_t>(
        r.span_depth, detail::kSpanStackCapacity);
    for (std::uint8_t i = 0; i < named; ++i)
      out << (i == 0 ? "" : ", ") << '"' << span_name(r.spans[i]) << '"';
    out << ']';
  }
  if (r.detail[0] != '\0') {
    out << ", \"detail\": ";
    put_json_string(out, r.detail);
  }
  out << "}";
}

}  // namespace

bool parse_log_level(std::string_view text, LogLevel* out) {
  if (text == "error") {
    *out = LogLevel::kError;
  } else if (text == "warn") {
    *out = LogLevel::kWarn;
  } else if (text == "info") {
    *out = LogLevel::kInfo;
  } else if (text == "trace") {
    *out = LogLevel::kTrace;
  } else {
    return false;
  }
  return true;
}

bool set_log_level_from_env() {
  const char* env = std::getenv("DPZ_LOG_LEVEL");
  if (env == nullptr) return false;
  LogLevel level = LogLevel::kWarn;
  if (!parse_log_level(env, &level)) return false;
  set_log_level(level);
  return true;
}

// One thread's slice of the flight recorder: a fixed ring appended
// under its own lock, which is uncontended on the recording path —
// contention exists only against a concurrent snapshot/clear.
struct FlightRecorder::ThreadRing {
  explicit ThreadRing(std::uint32_t id) : tid(id) {}
  Mutex m;
  const std::uint32_t tid;
  std::array<Record, kRingCapacity> ring DPZ_GUARDED_BY(m);
  std::uint64_t next DPZ_GUARDED_BY(m) = 0;  // monotone append count
};

FlightRecorder& FlightRecorder::instance() {
  static FlightRecorder* recorder = new FlightRecorder();  // never
  // destroyed: error paths may log during static destruction.
  return *recorder;
}

FlightRecorder::ThreadRing& FlightRecorder::local_ring() {
  thread_local ThreadRing* ring = nullptr;
  if (ring == nullptr) {
    const MutexLock lock(registry_m_);
    rings_.push_back(std::make_unique<ThreadRing>(
        static_cast<std::uint32_t>(rings_.size())));
    ring = rings_.back().get();
  }
  return *ring;
}

void FlightRecorder::record(Event event, LogLevel level,
                            StatusCode status, const LogContext& ctx,
                            std::string_view detail_text) {
  ThreadRing& ring = local_ring();
  Record r;
  r.ts_ns = TraceRecorder::now_ns();
  r.offset = ctx.offset;
  r.frame = ctx.frame;
  r.tid = ring.tid;
  r.event = event;
  r.level = level;
  r.status = static_cast<std::uint8_t>(status);
  const detail::SpanStack& stack = detail::t_span_stack;
  r.span_depth = static_cast<std::uint8_t>(
      std::min<std::uint32_t>(stack.depth, detail::kSpanStackCapacity));
  for (std::uint8_t i = 0; i < r.span_depth; ++i) r.spans[i] = stack.ids[i];
  copy_truncated(r.section, sizeof(r.section),
                 ctx.section != nullptr ? ctx.section : "");
  copy_truncated(r.detail, sizeof(r.detail), detail_text);
  {
    const MutexLock lock(ring.m);
    ring.ring[ring.next % kRingCapacity] = r;
    ++ring.next;
  }
  if (level == LogLevel::kError) {
    const MutexLock lock(last_error_m_);
    last_error_ = r;
    has_last_error_ = true;
  }
  {
    const MutexLock lock(sink_m_);
    if (sink_ != nullptr) {
      write_record_json(*sink_, r);
      *sink_ << '\n';
    }
  }
}

void FlightRecorder::clear() {
  {
    const MutexLock lock(registry_m_);
    for (const auto& ring : rings_) {
      const MutexLock ring_lock(ring->m);
      ring->next = 0;
    }
  }
  const MutexLock lock(last_error_m_);
  has_last_error_ = false;
}

std::size_t FlightRecorder::record_count() const {
  const MutexLock lock(registry_m_);
  std::size_t n = 0;
  for (const auto& ring : rings_) {
    const MutexLock ring_lock(ring->m);
    n += static_cast<std::size_t>(
        std::min<std::uint64_t>(ring->next, kRingCapacity));
  }
  return n;
}

std::vector<FlightRecorder::Record> FlightRecorder::snapshot() const {
  std::vector<Record> out;
  {
    const MutexLock lock(registry_m_);
    for (const auto& ring : rings_) {
      const MutexLock ring_lock(ring->m);
      const std::uint64_t held =
          std::min<std::uint64_t>(ring->next, kRingCapacity);
      for (std::uint64_t i = ring->next - held; i < ring->next; ++i)
        out.push_back(ring->ring[i % kRingCapacity]);
    }
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const Record& a, const Record& b) {
                     return a.ts_ns < b.ts_ns;
                   });
  return out;
}

void FlightRecorder::write_jsonl(std::ostream& out) const {
  for (const Record& r : snapshot()) {
    write_record_json(out, r);
    out << '\n';
  }
}

bool FlightRecorder::has_last_error() const {
  const MutexLock lock(last_error_m_);
  return has_last_error_;
}

std::string FlightRecorder::last_error_report() const {
  Record error;
  {
    const MutexLock lock(last_error_m_);
    if (!has_last_error_) return {};
    error = last_error_;
  }
  std::ostringstream out;
  out << "last error: " << event_name(error.event) << " (status "
      << status_code_name(static_cast<StatusCode>(error.status)) << ")\n";
  if (error.detail[0] != '\0')
    out << "  detail: " << error.detail << "\n";
  if (error.section[0] != '\0')
    out << "  section: " << error.section << "\n";
  if (error.offset != LogContext::kNoValue)
    out << "  archive offset: " << error.offset << "\n";
  if (error.frame != LogContext::kNoValue)
    out << "  frame index: " << error.frame << "\n";
  if (error.span_depth != 0) {
    out << "  span stack: ";
    const std::uint8_t named = std::min<std::uint8_t>(
        error.span_depth, detail::kSpanStackCapacity);
    for (std::uint8_t i = 0; i < named; ++i)
      out << (i == 0 ? "" : " > ") << span_name(error.spans[i]);
    if (error.span_depth > named) out << " > ...";
    out << "\n";
  }
  // Breadcrumbs: the trailing flight-recorder records up to and
  // including the error, oldest first.
  std::vector<Record> crumbs = snapshot();
  crumbs.erase(std::remove_if(crumbs.begin(), crumbs.end(),
                              [&](const Record& r) {
                                return r.ts_ns > error.ts_ns;
                              }),
               crumbs.end());
  if (crumbs.size() > kReportRecords)
    crumbs.erase(crumbs.begin(),
                 crumbs.end() - static_cast<std::ptrdiff_t>(kReportRecords));
  out << "flight recorder (" << crumbs.size()
      << " breadcrumbs, oldest first):\n";
  for (const Record& r : crumbs) {
    out << "  [";
    put_us(out, r.ts_ns);
    out << " us] tid " << r.tid << " " << level_name(r.level) << " "
        << event_name(r.event) << " status="
        << status_code_name(static_cast<StatusCode>(r.status));
    if (r.frame != LogContext::kNoValue) out << " frame=" << r.frame;
    if (r.offset != LogContext::kNoValue) out << " offset=" << r.offset;
    if (r.section[0] != '\0') out << " section=" << r.section;
    if (r.detail[0] != '\0') out << " detail=\"" << r.detail << '"';
    out << "\n";
  }
  return out.str();
}

void FlightRecorder::set_sink(std::ostream* sink) {
  const MutexLock lock(sink_m_);
  if (sink_ != nullptr) sink_->flush();
  sink_ = sink;
}

struct LogSinkScope::Impl {
  std::ofstream out;
  LogLevel previous_level = LogLevel::kWarn;
};

LogSinkScope::LogSinkScope(const std::string& path)
    : impl_(std::make_unique<Impl>()) {
  impl_->previous_level = log_level();
  impl_->out.open(path, std::ios::binary | std::ios::trunc);
  if (!impl_->out) return;
  ok_ = true;
  // A sink with the always-on default threshold would only ever see
  // error/warn records; raise to info so the file shows progress. An
  // explicitly raised level (DPZ_LOG_LEVEL=trace) is left alone.
  if (log_level() < LogLevel::kInfo) set_log_level(LogLevel::kInfo);
  FlightRecorder::instance().set_sink(&impl_->out);
}

LogSinkScope::~LogSinkScope() {
  if (ok_) {
    FlightRecorder::instance().set_sink(nullptr);
    set_log_level(impl_->previous_level);
  }
}

}  // namespace dpz::obs
