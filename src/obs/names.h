// Single registry of every telemetry name in the system: span ids for
// the trace recorder and counter/histogram ids for the metrics registry.
//
// Policy (enforced by tools/lint.sh rule 6): hot-path telemetry calls
// take these enums, never strings — no per-call allocation, no typo'd
// ad-hoc names, and the whole taxonomy stays greppable in one file. A
// new span or metric starts its life here; the JSON emitters look the
// display name up from these tables at flush time only.
#pragma once

#include <cstddef>
#include <cstdint>

namespace dpz::obs {

// ---- Span taxonomy ------------------------------------------------------
//
// One id per traced scope. Names mirror the paper's stage vocabulary
// (Figure 9) so the Perfetto view lines up with the time-breakdown bench.
enum class Span : std::uint8_t {
  // Compression stages (dpz.cpp, shared_basis.cpp).
  kStage1Dct = 0,     ///< block decomposition + per-block DCT
  kStage2Pca,         ///< PCA / k selection in the DCT domain
  kStage3Quantize,    ///< score normalization + uniform quantization
  kZlibEncode,        ///< serialization + section zlib passes
  // Decompression stages (dpz.cpp, shared_basis.cpp).
  kDecodeSections,    ///< header parse + checksummed section inflation
  kDecodeDequantize,  ///< codes -> scores
  kDecodeBackproject, ///< scores -> block matrix through the basis
  kDecodeIdct,        ///< inverse DCT + de-blocking
  // Container-level work (chunked.cpp).
  kFrameEncode,       ///< one chunked frame compressed
  kFrameDecode,       ///< one chunked frame decoded
  // Integrity (dpz.cpp, chunked.cpp, verify.cpp).
  kCrcCheck,          ///< one CRC32C verification
  kFrameRepair,       ///< one frame or parity group reconstructed
  kArchiveRepair,     ///< one whole-archive repair or scrub pass
  // Kernel dispatch (simd/dispatch.cpp).
  kSimdDispatch,      ///< one-time CPU detection + ISA selection
  // Thread pool (thread_pool.cpp).
  kPoolTask,          ///< one participant's chunk of a parallel_for
  kSpanCount_,        // sentinel — keep last
};

inline constexpr std::size_t kSpanCount =
    static_cast<std::size_t>(Span::kSpanCount_);

struct SpanInfo {
  const char* name;
  const char* category;
};

/// Display name + Chrome-trace category for every span id, indexed by
/// the enum value. This table is the one place telemetry span names are
/// spelled out (lint rule 6).
inline constexpr SpanInfo kSpanInfo[kSpanCount] = {
    {"stage1_dct", "stage"},
    {"stage2_pca", "stage"},
    {"stage3_quantize", "stage"},
    {"zlib_encode", "stage"},
    {"decode_sections", "stage"},
    {"decode_dequantize", "stage"},
    {"decode_backproject", "stage"},
    {"decode_idct", "stage"},
    {"frame_encode", "frame"},
    {"frame_decode", "frame"},
    {"crc_check", "integrity"},
    {"frame_repair", "integrity"},
    {"archive_repair", "integrity"},
    {"simd_dispatch", "simd"},
    {"pool_task", "pool"},
};

inline constexpr const char* span_name(Span id) {
  return kSpanInfo[static_cast<std::size_t>(id)].name;
}
inline constexpr const char* span_category(Span id) {
  return kSpanInfo[static_cast<std::size_t>(id)].category;
}

// ---- Counter taxonomy ---------------------------------------------------
enum class Counter : std::uint8_t {
  kCompressCalls = 0,    ///< whole-array compressions started
  kDecompressCalls,      ///< whole-array decompressions started
  kBytesIn,              ///< uncompressed bytes entering a compressor
  kBytesArchive,         ///< archive bytes produced
  kBytesDecoded,         ///< uncompressed bytes reconstructed
  kBytesStage12,         ///< paper-accounting stage-1&2 output bytes
  kBytesStage3,          ///< stage-3 output bytes (codes + outliers)
  kBytesZlibPayload,     ///< stage-3 payload after zlib
  kBytesSide,            ///< basis/means/scales side bytes after zlib
  kQuantValues,          ///< values pushed through the quantizer
  kQuantSaturated,       ///< values outside the covered range (escapes)
  kOutliers,             ///< outliers recorded by compressions
  kStoredRawFallbacks,   ///< incompressible-input fallbacks taken
  kCrcChecks,            ///< CRC32C verifications performed
  kCrcFailures,          ///< CRC32C verifications that mismatched
  kIoReadEintr,          ///< read() EINTR retries absorbed
  kIoWriteEintr,         ///< write() EINTR retries absorbed
  kIoShortReads,         ///< short read() transfers continued
  kIoShortWrites,        ///< short write() transfers continued
  kFramesEncoded,        ///< chunked frames compressed
  kFramesDecoded,        ///< chunked frames decoded (intact)
  kFramesRecovered,      ///< best-effort decodes: frames recovered
  kFramesLost,           ///< best-effort decodes: frames lost/filled
  kFramesRepaired,       ///< damaged frames rebuilt from parity
  kRepairFailed,         ///< damaged frames parity could not rebuild
  kAdmissionRejected,    ///< decodes rejected by pre-flight admission
  kCancelledOps,         ///< operations aborted by a CancelToken
  kDeadlineExceededOps,  ///< operations aborted by a deadline
  kCounterCount_,        // sentinel — keep last
};

inline constexpr std::size_t kCounterCount =
    static_cast<std::size_t>(Counter::kCounterCount_);

/// Display names, indexed by the enum value (lint rule 6: the only place
/// counter names are spelled out).
inline constexpr const char* kCounterNames[kCounterCount] = {
    "compress_calls",
    "decompress_calls",
    "bytes_in",
    "bytes_archive",
    "bytes_decoded",
    "bytes_stage12",
    "bytes_stage3",
    "bytes_zlib_payload",
    "bytes_side",
    "quantizer_values",
    "quantizer_saturated",
    "outlier_count",
    "stored_raw_fallbacks",
    "crc_checks",
    "crc_failures",
    "io_read_eintr",
    "io_write_eintr",
    "io_short_reads",
    "io_short_writes",
    "frames_encoded",
    "frames_decoded",
    "frames_recovered",
    "frames_lost",
    "frames_repaired",
    "repair_failed",
    "admission_rejected",
    "cancelled",
    "deadline_exceeded",
};

inline constexpr const char* counter_name(Counter id) {
  return kCounterNames[static_cast<std::size_t>(id)];
}

// ---- Histogram taxonomy -------------------------------------------------
//
// Fixed power-of-two buckets: bucket 0 counts value 0, bucket i >= 1
// counts values in [2^(i-1), 2^i). 41 buckets cover the full u64 byte /
// count range the pipelines can produce without ever reallocating.
enum class Hist : std::uint8_t {
  kSelectedK = 0,  ///< per-compression (or per-frame) selected k
  kFrameBytes,     ///< encoded size of each chunked frame
  kHistCount_,     // sentinel — keep last
};

inline constexpr std::size_t kHistCount =
    static_cast<std::size_t>(Hist::kHistCount_);
inline constexpr std::size_t kHistBuckets = 41;

/// Display names, indexed by the enum value (lint rule 6).
inline constexpr const char* kHistNames[kHistCount] = {
    "selected_k",
    "frame_bytes",
};

inline constexpr const char* hist_name(Hist id) {
  return kHistNames[static_cast<std::size_t>(id)];
}

// ---- Log-event taxonomy (obs/log.h) -------------------------------------
//
// One id per structured-log event class. Like spans and metrics, log
// sites take these enums, never strings (lint rule 6); the JSONL emitter
// and the breadcrumb report look the display name up at render time.
enum class Event : std::uint8_t {
  kErrorRaised = 0,    ///< an Error crossed a fault boundary (C API, CLI)
  kChecksumMismatch,   ///< a stored CRC32C disagreed with the bytes
  kFrameLost,          ///< best-effort decode gave a frame up as lost
  kFrameRebuilt,       ///< a damaged frame reconstructed bit-exactly
  kFrameRepairFailed,  ///< damage exceeded the parity budget
  kAdmissionDenied,    ///< pre-flight admission rejected an operation
  kOpCancelled,        ///< a CancelToken aborted an operation
  kOpDeadline,         ///< a deadline expiry aborted an operation
  kAllocFault,         ///< an injected allocation fault fired
  kIoFault,            ///< an injected I/O fault fired
  kPoolTaskError,      ///< a pool task propagated an exception
  kCommandStart,       ///< a CLI command began dispatch
  kEventCount_,        // sentinel — keep last
};

inline constexpr std::size_t kEventCount =
    static_cast<std::size_t>(Event::kEventCount_);

/// Display names, indexed by the enum value (lint rule 6: the only place
/// log-event names are spelled out).
inline constexpr const char* kEventNames[kEventCount] = {
    "error_raised",
    "checksum_mismatch",
    "frame_lost",
    "frame_rebuilt",
    "frame_repair_failed",
    "admission_denied",
    "op_cancelled",
    "op_deadline",
    "alloc_fault",
    "io_fault",
    "pool_task_error",
    "command_start",
};

inline constexpr const char* event_name(Event id) {
  return kEventNames[static_cast<std::size_t>(id)];
}

// ---- Prometheus help text -----------------------------------------------
//
// One sentence per counter / histogram for the exposition format's
// `# HELP` lines (obs/metrics.cpp to_prometheus). Kept beside the names
// so a new metric's help is written where the metric is born.
inline constexpr const char* kCounterHelp[kCounterCount] = {
    "Whole-array compressions started.",
    "Whole-array decompressions started.",
    "Uncompressed bytes entering a compressor.",
    "Archive bytes produced.",
    "Uncompressed bytes reconstructed.",
    "Paper-accounting stage-1 and stage-2 output bytes.",
    "Stage-3 output bytes (codes plus outliers).",
    "Stage-3 payload bytes after zlib.",
    "Basis, means, and scales side bytes after zlib.",
    "Values pushed through the quantizer.",
    "Values outside the covered quantizer range (escapes).",
    "Outliers recorded by compressions.",
    "Incompressible-input stored-raw fallbacks taken.",
    "CRC32C verifications performed.",
    "CRC32C verifications that mismatched.",
    "read() EINTR retries absorbed.",
    "write() EINTR retries absorbed.",
    "Short read() transfers continued.",
    "Short write() transfers continued.",
    "Chunked frames compressed.",
    "Chunked frames decoded intact.",
    "Best-effort decodes: frames recovered.",
    "Best-effort decodes: frames lost and filled.",
    "Damaged frames rebuilt bit-exactly from parity.",
    "Damaged frames parity could not rebuild.",
    "Operations rejected by pre-flight memory admission.",
    "Operations aborted by a CancelToken.",
    "Operations aborted by a deadline.",
};

inline constexpr const char* kHistHelp[kHistCount] = {
    "Selected principal components per compression or frame.",
    "Encoded size of each chunked frame in bytes.",
};

inline constexpr const char* counter_help(Counter id) {
  return kCounterHelp[static_cast<std::size_t>(id)];
}
inline constexpr const char* hist_help(Hist id) {
  return kHistHelp[static_cast<std::size_t>(id)];
}

}  // namespace dpz::obs
