// Knee-point detection on cumulative information curves (Method 1 of
// Algorithm 1, after Satopaa et al.'s "Kneedle").
//
// The knee is the point of maximum curvature of the fitted cumulative TVE
// curve, normalized to the unit square; beyond it, additional components
// buy diminishing information per stored feature. The paper offers two
// fits with different CR/accuracy trade-offs (Table II):
//  * kFit1D    — piecewise-linear ("1D interpolation"); curvature via
//                finite differences; aggressive, highest CR;
//  * kFitPolyn — least-squares polynomial; analytic curvature; smoother,
//                later knee -> lower CR but higher accuracy.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace dpz {

enum class KneeFit {
  kFit1D,
  kFitPolyn,
};

struct KneeResult {
  /// 1-based count of components to keep (k in the paper's notation).
  std::size_t k = 1;
  /// Curvature profile over the normalized resampled curve (diagnostics).
  std::vector<double> curvature;
};

/// Detects the knee of a nondecreasing curve sampled at x = 1..curve.size()
/// (curve[i] = cumulative value for k = i+1, e.g. a TVE curve in [0, 1]).
///
/// `poly_degree` applies to kFitPolyn only; `grid` is the resampling
/// density for the curvature scan. Returns k = 1 for degenerate curves
/// (fewer than 3 points, or already saturated at the first component).
KneeResult detect_knee(std::span<const double> curve,
                       KneeFit fit = KneeFit::kFit1D,
                       std::size_t poly_degree = 7, std::size_t grid = 512);

}  // namespace dpz
