// Variance inflation factor — DPZ's compressibility indicator (SS IV-D2).
//
// VIF_i = 1/(1 - R_i^2), where R_i^2 measures how well feature i is
// explained by the other features; equivalently VIF is the diagonal of the
// inverse correlation matrix. High collinearity between block-features is
// exactly what makes the k-PCA stage effective, so the paper probes a
// small random sample of the block data and compares the VIF distribution
// against the conventional cutoff of 5: below it, the data is flagged as
// poorly compressible by DPZ (e.g. HACC-vx) and standardization is applied
// before PCA.
#pragma once

#include <cstddef>
#include <vector>

#include "linalg/matrix.h"
#include "util/rng.h"

namespace dpz {

/// The conventional collinearity cutoff the paper adopts.
inline constexpr double kVifCutoff = 5.0;

/// VIFs of the rows (features) of `x` (M features x N samples), computed
/// as the diagonal of the inverse correlation matrix. Constant features
/// get VIF 1 (they carry no variance to inflate). A tiny ridge is applied
/// when the correlation matrix is numerically singular — perfectly
/// collinear features then report large-but-finite VIFs.
std::vector<double> vif_of_features(const Matrix& x);

/// VIF distribution of a random sample: picks max(2, SR * M) features and
/// `sample_cols` of the N columns, then evaluates vif_of_features on the
/// sampled submatrix. This is the probe from Algorithm 2 step 1-2 and the
/// data behind Figure 10's box plots.
std::vector<double> sampled_vif(const Matrix& x, double sampling_rate,
                                std::size_t sample_cols, Rng& rng);

}  // namespace dpz
