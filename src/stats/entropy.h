// Shannon entropy estimation over a histogram.
//
// The paper contrasts its VIF-based compressibility indicator with
// Shannon entropy (SS IV-D2): entropy measures the *inherent information
// level* of the value distribution, while VIF measures the *collinearity
// between block-features* — and it is the latter that predicts what the
// k-PCA stage can remove. The probe tooling reports both so users can see
// the distinction on their own data.
#pragma once

#include <cmath>
#include <span>

#include "stats/histogram.h"

namespace dpz {

/// Entropy (bits/value) of the empirical distribution over `bins`
/// equal-width bins spanning the data range. Returns 0 for constant or
/// empty input. A uniform distribution over all bins yields log2(bins).
inline double shannon_entropy(std::span<const double> values,
                              std::size_t bins = 256) {
  if (values.empty()) return 0.0;
  double lo = values[0], hi = values[0];
  for (const double v : values) {
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  if (!(hi > lo)) return 0.0;

  const Histogram h(values, bins, lo, hi);
  double entropy = 0.0;
  for (std::size_t b = 0; b < h.bin_count(); ++b) {
    const double p = h.frequency(b);
    if (p > 0.0) entropy -= p * std::log2(p);
  }
  return entropy;
}

}  // namespace dpz
