// Curve fitting for k-PCA selection (Algorithm 1 of the paper).
//
// Knee-point detection fits the cumulative TVE curve before measuring
// curvature; the paper offers two fits: 1-D (piecewise-linear)
// interpolation and polynomial interpolation, the latter producing a
// smoother curve (and, per Table II, higher accuracy but lower CR).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace dpz {

/// Least-squares polynomial fit of the given degree.
/// Coefficients are returned lowest power first: y = c0 + c1 x + c2 x^2...
/// x values are internally shifted/scaled to [-1, 1] for conditioning; the
/// returned evaluator handles that transparently.
class PolynomialFit {
 public:
  PolynomialFit(std::span<const double> x, std::span<const double> y,
                std::size_t degree);

  [[nodiscard]] double operator()(double x) const;
  [[nodiscard]] double derivative(double x) const;
  [[nodiscard]] double second_derivative(double x) const;
  [[nodiscard]] std::size_t degree() const { return coeffs_.size() - 1; }

 private:
  double x_shift_, x_scale_;          // maps raw x -> normalized t
  std::vector<double> coeffs_;        // in normalized t
};

/// Piecewise-linear interpolant through the sample points ("1D
/// interpolation" in the paper). x must be strictly increasing.
class LinearInterpolant {
 public:
  LinearInterpolant(std::span<const double> x, std::span<const double> y);

  [[nodiscard]] double operator()(double x) const;

  /// Resamples the interpolant at `n` uniformly spaced abscissae covering
  /// the original range.
  [[nodiscard]] std::vector<double> resample(std::size_t n) const;

  [[nodiscard]] double x_min() const { return x_.front(); }
  [[nodiscard]] double x_max() const { return x_.back(); }

 private:
  std::vector<double> x_, y_;
};

}  // namespace dpz
