// Uniform-bin histogram used by the distribution figures (Fig 1: raw vs
// DCT-coefficient distributions; Fig 2: PCA component distributions).
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "util/error.h"

namespace dpz {

class Histogram {
 public:
  /// Builds `bins` uniform bins over [lo, hi] and counts `values`;
  /// values outside the range are clamped into the edge bins.
  Histogram(std::span<const double> values, std::size_t bins, double lo,
            double hi)
      : lo_(lo), hi_(hi), counts_(bins, 0) {
    DPZ_REQUIRE(bins >= 1, "histogram needs at least one bin");
    DPZ_REQUIRE(hi > lo, "histogram range must be non-degenerate");
    const double width = (hi - lo) / static_cast<double>(bins);
    for (const double v : values) {
      auto b = static_cast<std::ptrdiff_t>((v - lo) / width);
      if (b < 0) b = 0;
      if (b >= static_cast<std::ptrdiff_t>(bins))
        b = static_cast<std::ptrdiff_t>(bins) - 1;
      ++counts_[static_cast<std::size_t>(b)];
    }
    total_ = values.size();
  }

  /// Auto-ranged over the data's min/max.
  static Histogram auto_ranged(std::span<const double> values,
                               std::size_t bins);

  [[nodiscard]] std::size_t bin_count() const { return counts_.size(); }
  [[nodiscard]] std::size_t count(std::size_t bin) const {
    return counts_[bin];
  }
  [[nodiscard]] double frequency(std::size_t bin) const {
    return total_ == 0 ? 0.0
                       : static_cast<double>(counts_[bin]) /
                             static_cast<double>(total_);
  }
  [[nodiscard]] double bin_center(std::size_t bin) const {
    const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
    return lo_ + (static_cast<double>(bin) + 0.5) * width;
  }
  [[nodiscard]] std::size_t total() const { return total_; }

  /// Terminal-friendly rendering: one `#`-bar line per bin.
  [[nodiscard]] std::string render_ascii(std::size_t max_width = 60) const;

 private:
  double lo_, hi_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
};

}  // namespace dpz
