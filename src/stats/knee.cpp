#include "stats/knee.h"

#include <algorithm>
#include <cmath>

#include "stats/fit.h"
#include "util/error.h"

namespace dpz {

namespace {

// Curvature magnitude kappa = |f''| / (1 + f'^2)^1.5 from analytic
// derivatives of a polynomial fit, evaluated in normalized coordinates.
std::vector<double> curvature_from_poly(const PolynomialFit& fit,
                                        std::size_t grid) {
  std::vector<double> kappa(grid);
  for (std::size_t i = 0; i < grid; ++i) {
    const double t = static_cast<double>(i) / static_cast<double>(grid - 1);
    const double d1 = fit.derivative(t);
    const double d2 = fit.second_derivative(t);
    kappa[i] = std::abs(d2) / std::pow(1.0 + d1 * d1, 1.5);
  }
  return kappa;
}

// Finite-difference curvature of a uniformly resampled curve.
std::vector<double> curvature_from_samples(std::span<const double> y,
                                           double dx) {
  const std::size_t n = y.size();
  std::vector<double> kappa(n, 0.0);
  for (std::size_t i = 1; i + 1 < n; ++i) {
    const double d1 = (y[i + 1] - y[i - 1]) / (2.0 * dx);
    const double d2 = (y[i + 1] - 2.0 * y[i] + y[i - 1]) / (dx * dx);
    kappa[i] = std::abs(d2) / std::pow(1.0 + d1 * d1, 1.5);
  }
  return kappa;
}

// Index of the first local maximum that rises meaningfully above the
// curvature floor; falls back to the global maximum.
std::size_t first_local_max(std::span<const double> kappa) {
  double peak = 0.0;
  for (const double v : kappa) peak = std::max(peak, v);
  if (peak <= 0.0) return 0;
  const double floor = 0.05 * peak;

  for (std::size_t i = 1; i + 1 < kappa.size(); ++i) {
    if (kappa[i] < floor) continue;
    if (kappa[i] >= kappa[i - 1] && kappa[i] > kappa[i + 1]) return i;
  }
  const auto it = std::max_element(kappa.begin(), kappa.end());
  return static_cast<std::size_t>(it - kappa.begin());
}

}  // namespace

KneeResult detect_knee(std::span<const double> curve, KneeFit fit,
                       std::size_t poly_degree, std::size_t grid) {
  DPZ_REQUIRE(!curve.empty(), "knee detection on empty curve");
  DPZ_REQUIRE(grid >= 8, "curvature grid too coarse");
  const std::size_t m = curve.size();

  KneeResult result;
  if (m < 3) {
    result.k = 1;
    return result;
  }

  // Normalize to the unit square: x = (k-1)/(m-1), y = (f - f1)/(fm - f1).
  const double y0 = curve.front();
  const double y1 = curve.back();
  if (!(y1 > y0)) {
    result.k = 1;  // flat curve: the first component already saturates
    return result;
  }
  std::vector<double> xs(m), ys(m);
  for (std::size_t i = 0; i < m; ++i) {
    xs[i] = static_cast<double>(i) / static_cast<double>(m - 1);
    ys[i] = (curve[i] - y0) / (y1 - y0);
  }

  if (fit == KneeFit::kFitPolyn) {
    const std::size_t degree = std::min<std::size_t>(poly_degree, m - 1);
    const PolynomialFit poly(xs, ys, degree);
    result.curvature = curvature_from_poly(poly, grid);
    const std::size_t gi = first_local_max(result.curvature);
    const double x_knee =
        static_cast<double>(gi) / static_cast<double>(grid - 1);
    const double k_raw = x_knee * static_cast<double>(m - 1) + 1.0;
    result.k = std::clamp<std::size_t>(
        static_cast<std::size_t>(std::lround(k_raw)), 1, m);
    return result;
  }

  // 1-D interpolation path: the curve *is* its piecewise-linear fit, so
  // measure curvature by central differences directly at the sample
  // points (spacing 1/(m-1) in normalized coordinates). Resampling a
  // piecewise-linear curve would put all curvature at the joints and
  // drown the knee in grid artifacts.
  result.curvature =
      curvature_from_samples(ys, 1.0 / static_cast<double>(m - 1));
  const std::size_t idx = first_local_max(result.curvature);
  result.k = std::clamp<std::size_t>(idx + 1, 1, m);
  return result;
}

}  // namespace dpz
