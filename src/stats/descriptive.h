// Descriptive statistics over spans — the small shared vocabulary used by
// the VIF probe, the dataset generators, and the figure harnesses.
#pragma once

#include <algorithm>
#include <cmath>
#include <span>
#include <vector>

#include "util/error.h"

namespace dpz {

/// Arithmetic mean (requires non-empty input).
inline double mean_of(std::span<const double> v) {
  DPZ_REQUIRE(!v.empty(), "mean of empty span");
  double sum = 0.0;
  for (const double x : v) sum += x;
  return sum / static_cast<double>(v.size());
}

/// Population variance (divide by n).
inline double variance_of(std::span<const double> v) {
  const double mu = mean_of(v);
  double acc = 0.0;
  for (const double x : v) acc += (x - mu) * (x - mu);
  return acc / static_cast<double>(v.size());
}

inline double stddev_of(std::span<const double> v) {
  return std::sqrt(variance_of(v));
}

/// Linear-interpolated quantile, q in [0, 1]. Copies and sorts.
inline double quantile_of(std::span<const double> v, double q) {
  DPZ_REQUIRE(!v.empty(), "quantile of empty span");
  DPZ_REQUIRE(q >= 0.0 && q <= 1.0, "quantile level must be in [0, 1]");
  std::vector<double> sorted(v.begin(), v.end());
  std::sort(sorted.begin(), sorted.end());
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

/// Five-number summary used by the Figure 10 box plots.
struct BoxStats {
  double min = 0, q1 = 0, median = 0, q3 = 0, max = 0, mean = 0;
};

inline BoxStats box_stats(std::span<const double> v) {
  BoxStats b;
  b.min = quantile_of(v, 0.0);
  b.q1 = quantile_of(v, 0.25);
  b.median = quantile_of(v, 0.5);
  b.q3 = quantile_of(v, 0.75);
  b.max = quantile_of(v, 1.0);
  b.mean = mean_of(v);
  return b;
}

/// Pearson correlation coefficient of two equal-length spans.
inline double pearson_correlation(std::span<const double> a,
                                  std::span<const double> b) {
  DPZ_REQUIRE(a.size() == b.size() && a.size() >= 2,
              "correlation needs two equal-length spans of >= 2 values");
  const double ma = mean_of(a), mb = mean_of(b);
  double sab = 0.0, saa = 0.0, sbb = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double da = a[i] - ma, db = b[i] - mb;
    sab += da * db;
    saa += da * da;
    sbb += db * db;
  }
  if (saa == 0.0 || sbb == 0.0) return 0.0;  // constant input: undefined -> 0
  return sab / std::sqrt(saa * sbb);
}

}  // namespace dpz
