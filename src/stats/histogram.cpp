#include "stats/histogram.h"

#include <algorithm>
#include <sstream>

#include "util/format.h"

namespace dpz {

Histogram Histogram::auto_ranged(std::span<const double> values,
                                 std::size_t bins) {
  DPZ_REQUIRE(!values.empty(), "histogram of empty span");
  double lo = values[0], hi = values[0];
  for (const double v : values) {
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  if (hi <= lo) hi = lo + 1.0;  // constant data: one degenerate bin range
  return Histogram(values, bins, lo, hi);
}

std::string Histogram::render_ascii(std::size_t max_width) const {
  std::size_t peak = 1;
  for (const std::size_t c : counts_) peak = std::max(peak, c);

  std::ostringstream os;
  for (std::size_t b = 0; b < counts_.size(); ++b) {
    const std::size_t width = counts_[b] * max_width / peak;
    os << scientific(bin_center(b), 2) << " | "
       << std::string(width, '#') << ' ' << counts_[b] << '\n';
  }
  return os.str();
}

}  // namespace dpz
