#include "stats/fit.h"

#include <algorithm>
#include <cmath>

#include "linalg/cholesky.h"
#include "linalg/matrix.h"
#include "util/error.h"

namespace dpz {

PolynomialFit::PolynomialFit(std::span<const double> x,
                             std::span<const double> y, std::size_t degree) {
  DPZ_REQUIRE(x.size() == y.size(), "x/y length mismatch");
  DPZ_REQUIRE(x.size() >= degree + 1,
              "need at least degree+1 points for a polynomial fit");

  double lo = x[0], hi = x[0];
  for (const double v : x) {
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  x_shift_ = 0.5 * (lo + hi);
  x_scale_ = (hi > lo) ? 2.0 / (hi - lo) : 1.0;

  // Normal equations (V^T V) c = V^T y on the conditioned abscissae. A
  // small ridge keeps the factorization positive definite for collinear
  // inputs without visibly biasing the fit.
  const std::size_t p = degree + 1;
  Matrix ata(p, p);
  std::vector<double> aty(p, 0.0);
  std::vector<double> powers(p);
  for (std::size_t s = 0; s < x.size(); ++s) {
    const double t = (x[s] - x_shift_) * x_scale_;
    powers[0] = 1.0;
    for (std::size_t j = 1; j < p; ++j) powers[j] = powers[j - 1] * t;
    for (std::size_t i = 0; i < p; ++i) {
      for (std::size_t j = i; j < p; ++j) ata(i, j) += powers[i] * powers[j];
      aty[i] += powers[i] * y[s];
    }
  }
  for (std::size_t i = 0; i < p; ++i) {
    for (std::size_t j = 0; j < i; ++j) ata(i, j) = ata(j, i);
    ata(i, i) += 1e-12 * static_cast<double>(x.size());
  }

  const auto chol = Cholesky::factor(ata);
  DPZ_REQUIRE(chol.has_value(), "polynomial fit normal equations singular");
  coeffs_ = chol->solve(aty);
}

double PolynomialFit::operator()(double x) const {
  const double t = (x - x_shift_) * x_scale_;
  double acc = 0.0;
  for (std::size_t j = coeffs_.size(); j-- > 0;) acc = acc * t + coeffs_[j];
  return acc;
}

double PolynomialFit::derivative(double x) const {
  const double t = (x - x_shift_) * x_scale_;
  double acc = 0.0;
  for (std::size_t j = coeffs_.size(); j-- > 1;)
    acc = acc * t + coeffs_[j] * static_cast<double>(j);
  return acc * x_scale_;  // chain rule through the conditioning map
}

double PolynomialFit::second_derivative(double x) const {
  const double t = (x - x_shift_) * x_scale_;
  double acc = 0.0;
  for (std::size_t j = coeffs_.size(); j-- > 2;)
    acc = acc * t +
          coeffs_[j] * static_cast<double>(j) * static_cast<double>(j - 1);
  return acc * x_scale_ * x_scale_;
}

LinearInterpolant::LinearInterpolant(std::span<const double> x,
                                     std::span<const double> y)
    : x_(x.begin(), x.end()), y_(y.begin(), y.end()) {
  DPZ_REQUIRE(x_.size() == y_.size(), "x/y length mismatch");
  DPZ_REQUIRE(x_.size() >= 2, "interpolant needs at least two points");
  for (std::size_t i = 1; i < x_.size(); ++i)
    DPZ_REQUIRE(x_[i] > x_[i - 1], "x must be strictly increasing");
}

double LinearInterpolant::operator()(double x) const {
  if (x <= x_.front()) return y_.front();
  if (x >= x_.back()) return y_.back();
  const auto it = std::upper_bound(x_.begin(), x_.end(), x);
  const std::size_t hi = static_cast<std::size_t>(it - x_.begin());
  const std::size_t lo = hi - 1;
  const double t = (x - x_[lo]) / (x_[hi] - x_[lo]);
  return y_[lo] * (1.0 - t) + y_[hi] * t;
}

std::vector<double> LinearInterpolant::resample(std::size_t n) const {
  DPZ_REQUIRE(n >= 2, "resample needs at least two points");
  std::vector<double> out(n);
  const double step = (x_max() - x_min()) / static_cast<double>(n - 1);
  for (std::size_t i = 0; i < n; ++i)
    out[i] = (*this)(x_min() + step * static_cast<double>(i));
  return out;
}

}  // namespace dpz
