#include "stats/vif.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "linalg/cholesky.h"
#include "linalg/pca.h"

namespace dpz {

std::vector<double> vif_of_features(const Matrix& x) {
  const std::size_t m = x.rows();
  DPZ_REQUIRE(m >= 2, "VIF needs at least two features");
  DPZ_REQUIRE(x.cols() >= 2, "VIF needs at least two samples");

  // Correlation matrix from the covariance; constant features are dropped
  // from the solve and reported as VIF 1.
  const Matrix cov = covariance(x);
  std::vector<std::size_t> live;
  live.reserve(m);
  for (std::size_t i = 0; i < m; ++i)
    if (cov(i, i) > 0.0) live.push_back(i);

  std::vector<double> vif(m, 1.0);
  if (live.size() < 2) return vif;

  const std::size_t ml = live.size();
  Matrix corr(ml, ml);
  for (std::size_t a = 0; a < ml; ++a) {
    for (std::size_t b = 0; b < ml; ++b) {
      const std::size_t i = live[a], j = live[b];
      corr(a, b) = cov(i, j) / std::sqrt(cov(i, i) * cov(j, j));
    }
  }

  // Escalating ridge: perfect collinearity makes the correlation matrix
  // singular; VIF is then "infinite", reported as a large finite value.
  auto chol = Cholesky::factor(corr);
  double ridge = 1e-10;
  while (!chol && ridge < 1e-2) {
    Matrix damped = corr;
    for (std::size_t i = 0; i < ml; ++i) damped(i, i) += ridge;
    chol = Cholesky::factor(damped);
    ridge *= 10.0;
  }
  if (!chol) return vif;  // hopeless input: report neutral VIFs

  const std::vector<double> diag = chol->inverse_diagonal();
  for (std::size_t a = 0; a < ml; ++a)
    vif[live[a]] = std::max(1.0, diag[a]);
  return vif;
}

std::vector<double> sampled_vif(const Matrix& x, double sampling_rate,
                                std::size_t sample_cols, Rng& rng) {
  DPZ_REQUIRE(sampling_rate > 0.0 && sampling_rate <= 1.0,
              "sampling rate must be in (0, 1]");
  const std::size_t m = x.rows();
  const std::size_t n = x.cols();

  // Floor the probe at 16 features: the regression behind VIF needs a
  // handful of regressors to be meaningful (the paper's SR = 1% of M =
  // 1800 CESM blocks probes 18), and tiny inputs would otherwise sample
  // only 2-3 features and understate collinearity.
  const std::size_t pick_rows = std::clamp<std::size_t>(
      static_cast<std::size_t>(
          std::ceil(sampling_rate * static_cast<double>(m))),
      std::min<std::size_t>(16, m), m);
  const std::size_t pick_cols = std::clamp<std::size_t>(sample_cols, 2, n);

  std::vector<std::size_t> rows(m), cols(n);
  std::iota(rows.begin(), rows.end(), 0);
  std::iota(cols.begin(), cols.end(), 0);
  rng.shuffle(rows.begin(), rows.end());
  rng.shuffle(cols.begin(), cols.end());
  rows.resize(pick_rows);
  cols.resize(pick_cols);
  std::sort(rows.begin(), rows.end());
  std::sort(cols.begin(), cols.end());

  Matrix sub(pick_rows, pick_cols);
  for (std::size_t a = 0; a < pick_rows; ++a)
    for (std::size_t b = 0; b < pick_cols; ++b)
      sub(a, b) = x(rows[a], cols[b]);

  return vif_of_features(sub);
}

}  // namespace dpz
