// Energy compaction ratio (Eq. 1 of the paper): the fraction of total
// signal energy captured by the k largest-magnitude transform
// coefficients. The paper uses ECR (rather than zigzag/zonal masking) as
// the information-preservation metric for DCT on scientific data, and
// Figure 3 plots its cumulative curve against the PCA TVE curve.
#pragma once

#include <algorithm>
#include <cmath>
#include <span>
#include <vector>

namespace dpz {

/// Cumulative ECR curve: out[k-1] = (sum of k largest |f_i|^2) / (total).
/// A constant-zero input yields an all-ones curve (nothing to preserve).
inline std::vector<double> ecr_curve(std::span<const double> coefficients) {
  std::vector<double> energy(coefficients.size());
  for (std::size_t i = 0; i < coefficients.size(); ++i)
    energy[i] = coefficients[i] * coefficients[i];
  std::sort(energy.begin(), energy.end(), std::greater<double>());

  double total = 0.0;
  for (const double e : energy) total += e;

  std::vector<double> curve(energy.size(), 1.0);
  if (total <= 0.0) return curve;
  double acc = 0.0;
  for (std::size_t i = 0; i < energy.size(); ++i) {
    acc += energy[i];
    curve[i] = acc / total;
  }
  curve.back() = 1.0;
  return curve;
}

/// Smallest k with cumulative ECR >= threshold.
inline std::size_t k_for_ecr(std::span<const double> coefficients,
                             double threshold) {
  const std::vector<double> curve = ecr_curve(coefficients);
  for (std::size_t k = 0; k < curve.size(); ++k)
    if (curve[k] >= threshold) return k + 1;
  return curve.size();
}

}  // namespace dpz
