#include "ecc/reed_solomon.h"

#include <algorithm>
#include <utility>

#include "ecc/gf256.h"
#include "util/error.h"
#include "util/resource.h"

namespace dpz::ecc {

namespace {

// Square-matrix Gaussian inversion over GF(2^8). `a` is n x n
// row-major and is consumed; returns the inverse. Throws
// NumericalError on a singular input — never reached for the matrices
// the codec builds (Vandermonde submatrices are provably invertible),
// but checked rather than assumed.
std::vector<std::uint8_t> gf_invert(std::vector<std::uint8_t> a,
                                    std::size_t n) {
  std::vector<std::uint8_t> inv(n * n, 0);
  for (std::size_t i = 0; i < n; ++i) inv[i * n + i] = 1;
  for (std::size_t col = 0; col < n; ++col) {
    governed_poll();
    std::size_t pivot = col;
    while (pivot < n && a[pivot * n + col] == 0) ++pivot;
    if (pivot == n)
      throw NumericalError("reed-solomon: singular shard matrix");
    if (pivot != col) {
      for (std::size_t j = 0; j < n; ++j) {
        std::swap(a[pivot * n + j], a[col * n + j]);
        std::swap(inv[pivot * n + j], inv[col * n + j]);
      }
    }
    const std::uint8_t scale = gf_inv(a[col * n + col]);
    for (std::size_t j = 0; j < n; ++j) {
      a[col * n + j] = gf_mul(a[col * n + j], scale);
      inv[col * n + j] = gf_mul(inv[col * n + j], scale);
    }
    for (std::size_t row = 0; row < n; ++row) {
      if (row == col) continue;
      const std::uint8_t factor = a[row * n + col];
      if (factor == 0) continue;
      for (std::size_t j = 0; j < n; ++j) {
        a[row * n + j] =
            gf_add(a[row * n + j], gf_mul(factor, a[col * n + j]));
        inv[row * n + j] =
            gf_add(inv[row * n + j], gf_mul(factor, inv[col * n + j]));
      }
    }
  }
  return inv;
}

// out += coef * shard, the accumulation primitive both directions share.
void gf_mul_add(std::span<std::uint8_t> out, std::uint8_t coef,
                std::span<const std::uint8_t> shard) {
  if (coef == 0) return;
  for (std::size_t b = 0; b < shard.size(); ++b)
    out[b] = gf_add(out[b], gf_mul(coef, shard[b]));
}

}  // namespace

RsCodec::RsCodec(std::size_t data_shards, std::size_t parity_shards)
    : k_(data_shards), m_(parity_shards) {
  DPZ_REQUIRE(k_ >= 1 && m_ >= 1 && k_ + m_ <= 255,
              "reed-solomon geometry must satisfy 1 <= k, 1 <= m, "
              "k + m <= 255");
  // Vandermonde rows over distinct elements 0..k+m-1, then normalize to
  // systematic form by right-multiplying with the inverse of the top
  // k x k block (see the header comment for why this preserves the
  // any-k-rows-invertible property).
  const std::size_t rows = k_ + m_;
  std::vector<std::uint8_t> vandermonde(rows * k_);
  for (std::size_t r = 0; r < rows; ++r)
    for (std::size_t c = 0; c < k_; ++c)
      vandermonde[r * k_ + c] = gf_pow(static_cast<std::uint8_t>(r), c);

  std::vector<std::uint8_t> top(k_ * k_);
  std::copy(vandermonde.begin(),
            vandermonde.begin() + static_cast<std::ptrdiff_t>(k_ * k_),
            top.begin());
  const std::vector<std::uint8_t> top_inv = gf_invert(std::move(top), k_);

  rows_.assign(rows * k_, 0);
  for (std::size_t r = 0; r < rows; ++r)
    for (std::size_t c = 0; c < k_; ++c)
      for (std::size_t i = 0; i < k_; ++i)
        rows_[r * k_ + c] =
            gf_add(rows_[r * k_ + c],
                   gf_mul(vandermonde[r * k_ + i], top_inv[i * k_ + c]));
}

std::vector<std::vector<std::uint8_t>> RsCodec::encode(
    std::span<const std::span<const std::uint8_t>> data) const {
  DPZ_REQUIRE(data.size() == k_, "reed-solomon: expected k data shards");
  const std::size_t shard_size = data.empty() ? 0 : data[0].size();
  for (const auto& shard : data)
    DPZ_REQUIRE(shard.size() == shard_size,
                "reed-solomon: shards must be equal-length");

  const ScopedCharge charge(static_cast<std::uint64_t>(m_) * shard_size);
  std::vector<std::vector<std::uint8_t>> parity(m_);
  for (std::size_t j = 0; j < m_; ++j) {
    governed_poll();
    parity[j].assign(shard_size, 0);
    const std::uint8_t* coefs = &rows_[(k_ + j) * k_];
    for (std::size_t i = 0; i < k_; ++i)
      gf_mul_add(parity[j], coefs[i], data[i]);
  }
  return parity;
}

std::vector<std::vector<std::uint8_t>> RsCodec::reconstruct(
    std::span<const std::span<const std::uint8_t>> shards,
    std::span<const std::uint8_t> present) const {
  DPZ_REQUIRE(shards.size() == k_ + m_ && present.size() == k_ + m_,
              "reed-solomon: expected k + m shards");
  std::vector<std::size_t> survivors;
  for (std::size_t i = 0; i < shards.size() && survivors.size() < k_; ++i)
    if (present[i] != 0) survivors.push_back(i);
  DPZ_REQUIRE(survivors.size() == k_,
              "reed-solomon: loss exceeds the parity budget");
  std::size_t shard_size = 0;
  for (const std::size_t s : survivors)
    shard_size = std::max(shard_size, shards[s].size());
  for (const std::size_t s : survivors)
    DPZ_REQUIRE(shards[s].size() == shard_size,
                "reed-solomon: shards must be equal-length");

  // Invert the k x k submatrix the survivors span: decode row i of the
  // inverse maps the surviving shards back onto data shard i.
  std::vector<std::uint8_t> sub(k_ * k_);
  for (std::size_t r = 0; r < k_; ++r)
    std::copy(rows_.begin() +
                  static_cast<std::ptrdiff_t>(survivors[r] * k_),
              rows_.begin() +
                  static_cast<std::ptrdiff_t>((survivors[r] + 1) * k_),
              sub.begin() + static_cast<std::ptrdiff_t>(r * k_));
  const std::vector<std::uint8_t> decode = gf_invert(std::move(sub), k_);

  const ScopedCharge charge(static_cast<std::uint64_t>(k_) * shard_size);
  std::vector<std::vector<std::uint8_t>> data(k_);
  for (std::size_t i = 0; i < k_; ++i) {
    governed_poll();
    if (present[i] != 0) {
      data[i].assign(shards[i].begin(), shards[i].end());
      continue;
    }
    data[i].assign(shard_size, 0);
    for (std::size_t r = 0; r < k_; ++r)
      gf_mul_add(data[i], decode[i * k_ + r], shards[survivors[r]]);
  }
  return data;
}

}  // namespace dpz::ecc
