// GF(2^8) arithmetic for the Reed-Solomon frame-parity codec.
//
// The field is GF(2^8) with the primitive polynomial
// x^8 + x^4 + x^3 + x^2 + 1 (0x11D), the conventional choice for
// storage erasure codes. Addition is XOR; multiplication goes through
// constexpr log/exp tables built at compile time, so the codec carries
// no init-order or runtime-table state and every operation is a pair of
// loads. Everything here is total except division by zero, which the
// codec never performs (pivots are checked before inversion).
#pragma once

#include <array>
#include <cstdint>

namespace dpz::ecc {

namespace detail {

struct Gf256Tables {
  std::array<std::uint8_t, 256> log{};
  std::array<std::uint8_t, 512> exp{};  // doubled so mul never reduces
};

constexpr Gf256Tables make_gf256_tables() {
  Gf256Tables t{};
  std::uint32_t x = 1;
  for (std::uint32_t i = 0; i < 255; ++i) {
    t.exp[i] = static_cast<std::uint8_t>(x);
    t.log[x] = static_cast<std::uint8_t>(i);
    x <<= 1U;
    if ((x & 0x100U) != 0) x ^= 0x11DU;
  }
  for (std::uint32_t i = 255; i < 512; ++i) t.exp[i] = t.exp[i - 255];
  return t;
}

inline constexpr Gf256Tables kGf256 = make_gf256_tables();

}  // namespace detail

[[nodiscard]] constexpr std::uint8_t gf_add(std::uint8_t a,
                                            std::uint8_t b) {
  return a ^ b;
}

[[nodiscard]] constexpr std::uint8_t gf_mul(std::uint8_t a,
                                            std::uint8_t b) {
  if (a == 0 || b == 0) return 0;
  return detail::kGf256.exp[static_cast<std::size_t>(detail::kGf256.log[a]) +
                            detail::kGf256.log[b]];
}

/// Multiplicative inverse; the caller guarantees a != 0.
[[nodiscard]] constexpr std::uint8_t gf_inv(std::uint8_t a) {
  return detail::kGf256.exp[255 - detail::kGf256.log[a]];
}

/// a / b; the caller guarantees b != 0.
[[nodiscard]] constexpr std::uint8_t gf_div(std::uint8_t a,
                                            std::uint8_t b) {
  if (a == 0) return 0;
  return detail::kGf256.exp[static_cast<std::size_t>(detail::kGf256.log[a]) +
                            255 - detail::kGf256.log[b]];
}

/// a^n for n >= 0 (0^0 == 1 by convention).
[[nodiscard]] constexpr std::uint8_t gf_pow(std::uint8_t a,
                                            std::size_t n) {
  std::uint8_t out = 1;
  for (std::size_t i = 0; i < n; ++i) out = gf_mul(out, a);
  return out;
}

}  // namespace dpz::ecc
