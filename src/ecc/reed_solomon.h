// Systematic Reed-Solomon erasure coding over GF(2^8).
//
// The chunked container's parity layer (docs/FORMAT.md, "DZC3") groups
// k compressed frame payloads and stores m parity shards per group; any
// m lost shards — data or parity — are recoverable from the k
// survivors. The codec is *systematic*: the encode matrix's top k rows
// are the identity, so data shards are stored verbatim and parity is an
// additive layer that parity-less readers can ignore.
//
// Construction follows the classic storage-codec recipe: a
// (k+m) x k Vandermonde matrix (rows are powers of distinct field
// elements, so every k-row submatrix is invertible) is multiplied by
// the inverse of its own top k x k block. That right-multiplication by
// an invertible matrix preserves the any-k-rows-invertible property
// while turning the top block into the identity. Reconstruction inverts
// the k x k submatrix picked out by the surviving shards.
//
// Erasure-only: the container's CRC32C layer localizes damage to whole
// shards before the codec runs, so no error-location polynomial is
// needed. Shard-size work is governed — encode and reconstruct charge
// their buffers against the ambient MemoryArena and poll the
// cancellation/deadline checkpoint per shard row.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace dpz::ecc {

class RsCodec {
 public:
  /// Geometry limits: k >= 1, m >= 1, k + m <= 255 (the field minus the
  /// zero element bounds the distinct Vandermonde rows). Throws
  /// InvalidArgument outside that envelope.
  RsCodec(std::size_t data_shards, std::size_t parity_shards);

  [[nodiscard]] std::size_t data_shards() const noexcept { return k_; }
  [[nodiscard]] std::size_t parity_shards() const noexcept { return m_; }

  /// Computes the m parity shards for k equal-length data shards.
  /// Every span in `data` must have the same size.
  [[nodiscard]] std::vector<std::vector<std::uint8_t>> encode(
      std::span<const std::span<const std::uint8_t>> data) const;

  /// Erasure-only reconstruction of the k data shards. `shards` holds
  /// the k data shards followed by the m parity shards; `present[i]`
  /// is nonzero when shards[i] survived (its span is valid and
  /// equal-length). Missing shards' spans are ignored. Surviving data
  /// shards are copied through verbatim; missing ones are solved from
  /// the survivors. Throws InvalidArgument when fewer than k shards
  /// survive.
  [[nodiscard]] std::vector<std::vector<std::uint8_t>> reconstruct(
      std::span<const std::span<const std::uint8_t>> shards,
      std::span<const std::uint8_t> present) const;

 private:
  std::size_t k_;
  std::size_t m_;
  /// (k+m) x k encode matrix, row-major; rows [0, k) are the identity.
  std::vector<std::uint8_t> rows_;
};

}  // namespace dpz::ecc
