// Entry point of the `dpz` command-line compressor; all logic lives in
// tools/cli_app.h so the test suite can exercise it.
#include <iostream>

#include "tools/cli_app.h"

int main(int argc, char** argv) {
  return dpz::tools::run_cli(argc, argv, std::cout, std::cerr);
}
