#include "tools/cli_app.h"

#include <algorithm>
#include <iostream>

#include <filesystem>
#include <fstream>
#include <map>
#include <new>
#include <optional>

#include "core/blocking.h"
#include "core/dpz.h"
#include "core/chunked.h"
#include "core/rate_control.h"
#include "core/sampling.h"
#include "core/verify.h"
#include "data/datasets.h"
#include "dsp/dct.h"
#include "io/file_io.h"
#include "metrics/metrics.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/telemetry.h"
#include "obs/trace.h"
#include "simd/simd.h"
#include "stats/vif.h"
#include "util/cli.h"
#include "util/error.h"
#include "util/format.h"
#include "util/json_mini.h"
#include "util/resource.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace dpz::tools {

namespace {

const char* kUsage = R"(usage:
  dpz compress   <in.f32> <out.dpz> --shape=AxBxC [options]
  dpz decompress <in.dpz> <out.f32> [--components=k] [--threads=N]
                 [--best-effort] [--fill=V]
  dpz info       <in.dpz>
  dpz verify     <archive> [--scrub]
  dpz repair     <archive>
  dpz inspect    <archive>
  dpz probe      <in.f32> --shape=AxBxC [--tve=...]
  dpz datasets   <outdir> [--scale=0.2] [--names=CLDHGH,PHIS] [--seed=N]
  dpz metrics    export
  dpz trace-report <trace.json>

decompress options:
  --best-effort       salvage a damaged chunked container: intact frames
                      decode normally, lost frames are filled with --fill
                      (exit 3 when frames were lost, 0 on full recovery)
  --fill=V            fill value for lost frames (default 0)

verify walks an archive's sections and checks every CRC32C (format v2)
without decompressing; inspect dumps the header and section table.
Both exit 0 when the archive is intact, 1 otherwise.

verify --scrub additionally recomputes a parity-carrying container's
Reed-Solomon shards and cross-checks them against the stored parity,
still without decoding any frame. repair rebuilds damaged frames (and
damaged parity shards) from surviving shards and rewrites the archive
in place atomically (temp + fsync + rename); it exits 0 when the
archive ends up intact, 1 when damage exceeds the parity budget.

compress options:
  --scheme=l|s        loose (P=1e-3, 1-byte codes) or strict (default)
  --tve=0.99999       explained-variance threshold for k selection
  --knee[=1d|polyn]   knee-point k selection instead of the TVE threshold
  --sampling          enable the Algorithm-2 sampling strategy
  --error-bound=P     override the scheme's quantizer error bound
  --dct-keep=f        truncate trailing DCT coefficients (keep fraction f)
  --dtype=f32|f64     input element type (default f32)
  --target-cr=R       pick k for a compression ratio of at least R
                      (overrides --tve/--knee; f32 only)
  --target-psnr=D     pick the cheapest k reaching D dB (ditto)
  --chunk=N           chunked container with N values per frame
                      (memory-bounded; f32 only)
  --parity=K+M        (with --chunk) store M Reed-Solomon parity shards
                      per group of K frames; any M damaged frames in a
                      group are rebuilt bit-exactly on decode or by
                      dpz repair (K+M <= 255, e.g. 16+2)
  --threads=N         worker threads for the hot loops (0 = all cores);
                      output bytes are identical for every N
  --isa=NAME          pin the SIMD kernel dispatch (scalar, avx2, neon);
                      output bytes are identical for every choice — see
                      docs/SIMD.md. Overrides DPZ_FORCE_ISA
  --verify            decompress after compressing and report PSNR

resource limits (compress and decompress; see docs/ROBUSTNESS.md):
  --max-memory=N      peak-memory budget for the pipeline's working set
                      (suffix K/M/G/T, e.g. 64M). Decompress prices the
                      header-claimed geometry against the budget before
                      any large allocation, so a forged archive claiming
                      terabytes exits 4 (resource_exhausted) up front
  --deadline-ms=D     wall-clock deadline for the pipeline work; expiry
                      aborts cleanly with exit 5 (deadline_exceeded).
                      Limits never change output bytes

telemetry options (any command; see docs/OBSERVABILITY.md):
  --trace=out.json    record spans and write a Chrome trace-event file
                      (open in ui.perfetto.dev or chrome://tracing)
  --metrics[=json]    print the pipeline metrics registry after the
                      command (text by default, one JSON object with
                      =json); enabling telemetry never changes output
                      bytes

diagnostics options (any command; see docs/OBSERVABILITY.md):
  --log=out.jsonl     stream structured log events to a JSON-lines file
                      (raises the log level to info unless DPZ_LOG_LEVEL
                      says otherwise); logging never changes output bytes
  --diagnose          on failure, print the flight-recorder error report
                      (failing offset/frame/section, active span stack,
                      and breadcrumb events) to stderr

metrics export prints the metrics registry in the Prometheus text
exposition format (counters as dpz_<name>_total, histograms with
cumulative buckets); trace-report summarizes a --trace file: per-stage
wall and self time, pool queue-wait attribution, a critical-path
estimate, and per-frame outliers.
)";

/// Process exit code for a dpz failure class. Exhaustive over
/// StatusCode by contract: dpz_analyze (status-exhaustive) flags a new
/// enumerator that lands here without an explicit row, so the exit-code
/// surface is decided when the status is born, not discovered by a
/// caller's shell script. 0 and 3 mirror the non-exception paths below
/// (success, best-effort decode with lost frames); 2 is reserved for
/// usage errors (unknown command / bad invocation). Resource-governance
/// outcomes get their own codes so a batch driver can tell "raise the
/// budget and retry" (4), "give it more time" (5), and "the operator
/// asked for this" (6) apart from data corruption (1).
int exit_code_for(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return 0;
    case StatusCode::kPartial:
      return 3;
    case StatusCode::kResourceExhausted:
      return 4;
    case StatusCode::kDeadlineExceeded:
      return 5;
    case StatusCode::kCancelled:
      return 6;
    case StatusCode::kInvalidArgument:
    case StatusCode::kFormat:
    case StatusCode::kInternal:
    case StatusCode::kIo:
    case StatusCode::kNumerical:
    case StatusCode::kChecksum:
      return 1;
  }
  return 1;
}

unsigned parse_threads(const CliArgs& args) {
  const int threads = args.get_int("threads", 0);
  DPZ_REQUIRE(threads >= 0, "--threads must be >= 0");
  return static_cast<unsigned>(threads);
}

// Parses a byte-size flag value: a decimal count with an optional
// K/M/G/T binary suffix ("64M", "2G", "1048576").
std::uint64_t parse_byte_size(const std::string& text) {
  std::uint64_t mult = 1;
  std::size_t digits = text.size();
  if (!text.empty()) {
    switch (text.back()) {
      case 'K': case 'k': mult = 1ULL << 10; --digits; break;
      case 'M': case 'm': mult = 1ULL << 20; --digits; break;
      case 'G': case 'g': mult = 1ULL << 30; --digits; break;
      case 'T': case 't': mult = 1ULL << 40; --digits; break;
      default: break;
    }
  }
  const std::string num = text.substr(0, digits);
  DPZ_REQUIRE(!num.empty() && num.find_first_not_of("0123456789") ==
                                  std::string::npos,
              "malformed byte size '" + text + "' (use e.g. 64M or 2G)");
  const std::uint64_t value = std::stoull(num);
  DPZ_REQUIRE(value <= UINT64_MAX / mult,
              "byte size '" + text + "' overflows");
  return value * mult;
}

// Resolves the resource-governance flags shared by compress and
// decompress. The deadline starts here — flag parsing time — so it
// covers the whole pipeline run that follows.
ResourceLimits limits_from_flags(const CliArgs& args) {
  ResourceLimits limits;
  const std::string memory = args.get_string("max-memory", "");
  if (!memory.empty()) limits.max_memory_bytes = parse_byte_size(memory);
  const double deadline_ms = args.get_double("deadline-ms", 0.0);
  DPZ_REQUIRE(deadline_ms >= 0.0, "--deadline-ms must be >= 0");
  if (deadline_ms > 0.0)
    limits.deadline_ns = ResourceLimits::deadline_after_ms(deadline_ms);
  return limits;
}

DpzConfig config_from_flags(const CliArgs& args) {
  DpzConfig config;
  const std::string scheme = args.get_string("scheme", "s");
  if (scheme == "l" || scheme == "loose") {
    config = DpzConfig::loose();
  } else if (scheme == "s" || scheme == "strict") {
    config = DpzConfig::strict();
  } else {
    throw InvalidArgument("unknown scheme '" + scheme + "' (use l or s)");
  }

  config.tve = args.get_double("tve", 0.99999);
  if (args.has("knee")) {
    config.selection = KSelectionMethod::kKneePoint;
    const std::string fit = args.get_string("knee", "1d");
    if (fit == "polyn" || fit == "poly") {
      config.knee_fit = KneeFit::kFitPolyn;
    } else if (fit == "1d" || fit.empty()) {
      config.knee_fit = KneeFit::kFit1D;
    } else {
      throw InvalidArgument("unknown knee fit '" + fit +
                            "' (use 1d or polyn)");
    }
  }
  config.use_sampling = args.get_bool("sampling", false);
  config.error_bound = args.get_double("error-bound", 0.0);
  config.dct_keep_fraction = args.get_double("dct-keep", 1.0);
  config.threads = parse_threads(args);
  config.limits = limits_from_flags(args);
  return config;
}

// Parses --parity=K+M into {k, m}; {0, 0} when the flag is absent. The
// geometry bounds mirror chunked_compress (GF(2^8) supports at most 255
// shards per group), so a bad value fails here as a usage error instead
// of deep inside the codec.
std::pair<unsigned, unsigned> parse_parity(const CliArgs& args) {
  const std::string text = args.get_string("parity", "");
  if (text.empty()) return {0, 0};
  const std::size_t plus = text.find('+');
  const auto digits = [](const std::string& s) {
    return !s.empty() &&
           s.find_first_not_of("0123456789") == std::string::npos;
  };
  DPZ_REQUIRE(plus != std::string::npos &&
                  digits(text.substr(0, plus)) &&
                  digits(text.substr(plus + 1)),
              "malformed --parity '" + text + "' (use e.g. 16+2)");
  const unsigned long k = std::stoul(text.substr(0, plus));
  const unsigned long m = std::stoul(text.substr(plus + 1));
  DPZ_REQUIRE(k >= 1 && m >= 1 && k + m <= 255,
              "--parity needs k >= 1, m >= 1, k+m <= 255");
  return {static_cast<unsigned>(k), static_cast<unsigned>(m)};
}

bool is_f64(const CliArgs& args) {
  const std::string dtype = args.get_string("dtype", "f32");
  if (dtype == "f64" || dtype == "double") return true;
  if (dtype == "f32" || dtype == "float") return false;
  throw InvalidArgument("unknown dtype '" + dtype + "' (use f32 or f64)");
}

int cmd_compress(const CliArgs& args, std::ostream& out) {
  DPZ_REQUIRE(args.positional().size() == 3,
              "compress needs <in.f32> <out.dpz>");
  const std::string in_path = args.positional()[1];
  const std::string out_path = args.positional()[2];
  const std::string shape_text = args.get_string("shape", "");
  DPZ_REQUIRE(!shape_text.empty(), "--shape=AxBxC is required");

  const bool f64 = is_f64(args);
  const DpzConfig config = config_from_flags(args);

  // The f64 path keeps its own array to avoid a lossy down-conversion.
  FloatArray data;
  DoubleArray data64;
  if (f64) {
    data64 = read_f64(in_path, parse_shape(shape_text));
  } else {
    data = read_f32(in_path, parse_shape(shape_text));
  }

  const auto chunk =
      static_cast<std::size_t>(args.get_int("chunk", 0));
  DPZ_REQUIRE(!(f64 && chunk != 0),
              "the chunked container currently supports f32 input only");
  const auto [parity_k, parity_m] = parse_parity(args);
  DPZ_REQUIRE(!(parity_m != 0 && chunk == 0),
              "--parity requires --chunk");
  const double target_cr = args.get_double("target-cr", 0.0);
  const double target_psnr = args.get_double("target-psnr", 0.0);
  DPZ_REQUIRE(!(chunk != 0 && (target_cr > 0.0 || target_psnr > 0.0)),
              "rate targeting and --chunk cannot be combined");
  DPZ_REQUIRE(!(f64 && (target_cr > 0.0 || target_psnr > 0.0)),
              "rate targeting currently supports f32 input only");
  DPZ_REQUIRE(!(target_cr > 0.0 && target_psnr > 0.0),
              "choose one of --target-cr and --target-psnr");

  Timer timer;
  DpzStats stats;
  std::vector<std::uint8_t> archive;
  if (chunk != 0) {
    ChunkedConfig ccfg;
    ccfg.dpz = config;
    ccfg.chunk_values = chunk;
    // The container fans out over frames, so the knob moves to the outer
    // loop; per-frame threading is disabled inside chunked_compress.
    ccfg.threads = config.threads;
    if (parity_m != 0) {
      ccfg.parity_k = parity_k;
      ccfg.parity_m = parity_m;
    }
    ChunkedStats cstats;
    archive = chunked_compress(data, ccfg, &cstats);
    stats.original_bytes = cstats.original_bytes;
    stats.archive_bytes = cstats.archive_bytes;
    stats.stored_raw = cstats.stored_raw_frames == cstats.frame_count &&
                       cstats.frame_count > 0;
    out << "chunked container: " << cstats.frame_count << " frames";
    if (parity_m != 0) out << ", parity " << parity_k << "+" << parity_m;
    out << "\n";
  } else if (target_cr > 0.0 || target_psnr > 0.0) {
    const RateTargetResult result =
        target_cr > 0.0
            ? dpz_compress_target_ratio(data, target_cr, config)
            : dpz_compress_target_psnr(data, target_psnr, config);
    archive = result.archive;
    stats = result.stats;
    if (!result.target_met)
      out << "warning: target not reachable; best effort at k = "
          << result.k << " (CR " << fixed(result.achieved_cr, 2)
          << "X, PSNR " << fixed(result.achieved_psnr_db, 2) << " dB)\n";
  } else {
    archive = f64 ? dpz_compress(data64, config, &stats)
                  : dpz_compress(data, config, &stats);
  }
  const double seconds = timer.elapsed();
  write_bytes(out_path, archive);

  out << in_path << " (" << human_bytes(stats.original_bytes) << ") -> "
      << out_path << " (" << human_bytes(archive.size()) << ")\n"
      << "ratio " << fixed(stats.cr_archive(), 2) << "X, "
      << fixed(seconds, 2) << " s";
  if (chunk != 0) {
    // per-frame details are in the container
  } else if (stats.stored_raw) {
    out << " [stored: input resisted the pipeline]";
  } else {
    out << ", k = " << stats.k << "/" << stats.layout.m;
  }
  out << "\n";

  if (args.get_bool("verify", false)) {
    ErrorStats err;
    if (chunk != 0) {
      const FloatArray back = chunked_decompress(archive, config.threads);
      err = compute_error_stats(data.flat(), back.flat());
    } else if (f64) {
      const DoubleArray back =
          dpz_decompress_f64(archive, 0, config.threads, config.limits);
      err = compute_error_stats(data64.flat(), back.flat());
    } else {
      const FloatArray back =
          dpz_decompress(archive, 0, config.threads, config.limits);
      err = compute_error_stats(data.flat(), back.flat());
    }
    out << "verify: PSNR " << fixed(err.psnr_db, 2) << " dB, max err "
        << scientific(err.max_abs_error, 2) << ", mean theta "
        << scientific(err.mean_rel_error, 2) << "\n";
  }
  return 0;
}

int cmd_decompress(const CliArgs& args, std::ostream& out) {
  DPZ_REQUIRE(args.positional().size() == 3,
              "decompress needs <in.dpz> <out.f32>");
  const std::string in_path = args.positional()[1];
  const std::string out_path = args.positional()[2];
  const auto components =
      static_cast<std::size_t>(args.get_int("components", 0));
  const unsigned threads = parse_threads(args);
  const ResourceLimits limits = limits_from_flags(args);

  const std::vector<std::uint8_t> archive = read_bytes(in_path);

  // Chunked containers carry their own magic ("DZCK" v1, "DZC2" v2,
  // "DZC3" with parity); route them directly.
  const bool is_chunked =
      archive.size() >= 4 && archive[0] == 0x44 && archive[1] == 0x5A &&
      archive[2] == 0x43 &&
      (archive[3] == 0x4B || archive[3] == 0x32 || archive[3] == 0x33);
  if (is_chunked) {
    ChunkedConfig config;
    config.threads = threads;
    config.dpz.limits = limits;
    if (args.get_bool("best-effort", false))
      config.decode_policy = DecodePolicy::kBestEffort;
    config.fill_value = args.get_double("fill", 0.0);

    Timer chunk_timer;
    DecodeReport report;
    const FloatArray data = chunked_decompress(archive, config, &report);
    const double seconds = chunk_timer.elapsed();
    write_f32(out_path, data);
    out << in_path << " -> " << out_path << " ("
        << human_bytes(data.size() * sizeof(float)) << ", "
        << fixed(seconds, 2) << " s, "
        << report.frames_total << " frames)\n";
    if (report.frames_repaired != 0)
      out << "parity: repaired " << report.frames_repaired
          << (report.frames_repaired == 1 ? " damaged frame"
                                          : " damaged frames")
          << " bit-exactly\n";
    if (!report.complete()) {
      out << "best effort: recovered " << report.frames_recovered << "/"
          << report.frames_total << " frames; lost frames filled with "
          << config.fill_value << "\n";
      for (const DecodeReport::FrameError& e : report.lost)
        out << "  frame " << e.frame << ": " << e.message << "\n";
      return 3;
    }
    return 0;
  }

  const DpzArchiveInfo info = dpz_inspect(archive);
  Timer timer;
  std::size_t count = 0;
  double seconds = 0.0;
  if (info.double_precision) {
    const DoubleArray data =
        dpz_decompress_f64(archive, components, threads, limits);
    seconds = timer.elapsed();
    write_f64(out_path, data);
    count = data.size();
  } else {
    const FloatArray data =
        dpz_decompress(archive, components, threads, limits);
    seconds = timer.elapsed();
    write_f32(out_path, data);
    count = data.size();
  }

  out << in_path << " -> " << out_path << " ("
      << human_bytes(count * (info.double_precision ? 8 : 4)) << ", "
      << fixed(seconds, 2) << " s";
  if (components != 0) out << ", first " << components << " components";
  out << ")\n";
  return 0;
}

int cmd_info(const CliArgs& args, std::ostream& out) {
  DPZ_REQUIRE(args.positional().size() == 2, "info needs <in.dpz>");
  const std::vector<std::uint8_t> archive =
      read_bytes(args.positional()[1]);
  const DpzArchiveInfo info = dpz_inspect(archive);

  out << "archive:  " << human_bytes(info.archive_bytes) << "\n";
  out << "shape:    ";
  for (std::size_t d = 0; d < info.shape.size(); ++d)
    out << (d ? " x " : "") << info.shape[d];
  out << "\n";
  if (info.stored_raw) {
    out << "mode:     stored (zlib over raw floats; input resisted the "
           "pipeline)\n";
    return 0;
  }
  out << "dtype:    " << (info.double_precision ? "f64" : "f32") << "\n";
  out << "mode:     DPZ pipeline, " << (info.wide_codes ? "2" : "1")
      << "-byte codes, P = " << scientific(info.error_bound, 1)
      << (info.standardized ? ", standardized" : "") << "\n"
      << "blocks:   " << info.layout.m << " x " << info.layout.n
      << (info.layout.padded ? " (padded)" : "") << "\n"
      << "k:        " << info.k << " components ("
      << fixed(100.0 * static_cast<double>(info.k) /
                   static_cast<double>(info.layout.m),
               1)
      << "% of features)\n"
      << "outliers: " << info.outlier_count << "\n";
  const std::size_t elem = info.double_precision ? 8 : 4;
  const double cr = compression_ratio(
      info.layout.original_total * elem, info.archive_bytes);
  out << "ratio:    " << fixed(cr, 2) << "X ("
      << fixed(static_cast<double>(elem) * 8.0 / std::max(cr, 1e-9), 3)
      << " bits/value)\n";
  return 0;
}

// One section-table row per checksummed unit, e.g.
//   side        offset 75      size 1432    crc ok
void print_section_table(const VerifyReport& rep, std::ostream& out) {
  for (const SectionStatus& s : rep.sections) {
    out << "  " << s.name;
    for (std::size_t pad = s.name.size(); pad < 12; ++pad) out << ' ';
    out << "offset " << s.offset << "  size " << s.size;
    if (s.raw_size != 0) out << "  raw " << s.raw_size;
    if (s.has_crc)
      out << (s.crc_ok ? "  crc ok" : "  crc MISMATCH");
    else
      out << "  crc -";
    out << "\n";
  }
}

// Parity scrub: CRC-sweeps frames and parity shards, then recomputes
// the parity of every fully intact group and compares it against the
// stored shards — proving the redundancy would actually reconstruct,
// without decoding a single frame.
int cmd_scrub(const std::vector<std::uint8_t>& bytes, std::ostream& out) {
  const ScrubReport rep = chunked_scrub(bytes);
  out << "frames:   " << rep.frames_total << "\n";
  if (rep.parity_m == 0) {
    out << "parity:   none (nothing to scrub)\n";
  } else {
    out << "parity:   " << rep.parity_k << "+" << rep.parity_m << " ("
        << rep.groups << (rep.groups == 1 ? " group" : " groups")
        << ")\n";
  }
  if (rep.frames_damaged != 0)
    out << "problem:  " << rep.frames_damaged
        << " frame checksum mismatch(es)\n";
  if (rep.parity_shards_damaged != 0)
    out << "problem:  " << rep.parity_shards_damaged
        << " parity shard checksum mismatch(es)\n";
  if (rep.parity_mismatches != 0)
    out << "problem:  " << rep.parity_mismatches
        << " recomputed parity shard(s) disagree with the stored "
           "parity\n";
  out << (rep.ok() ? "OK" : "CORRUPT") << "\n";
  return rep.ok() ? 0 : 1;
}

int cmd_verify(const CliArgs& args, std::ostream& out) {
  DPZ_REQUIRE(args.positional().size() == 2, "verify needs <archive>");
  const std::vector<std::uint8_t> bytes = read_bytes(args.positional()[1]);
  if (args.get_bool("scrub", false)) return cmd_scrub(bytes, out);
  const VerifyReport rep = verify_archive(bytes);

  out << "kind:     " << rep.kind << "\n"
      << "format:   v" << rep.version
      << (rep.version >= 2 ? " (checksummed)"
                           : " (legacy, no checksums)")
      << "\n";
  print_section_table(rep, out);
  for (const std::string& p : rep.problems) out << "problem:  " << p << "\n";
  out << (rep.ok ? "OK" : "CORRUPT") << "\n";
  return rep.ok ? 0 : 1;
}

int cmd_repair(const CliArgs& args, std::ostream& out) {
  DPZ_REQUIRE(args.positional().size() == 2, "repair needs <archive>");
  const std::string path = args.positional()[1];
  const std::vector<std::uint8_t> bytes = read_bytes(path);
  RepairReport rep;
  const std::vector<std::uint8_t> healed = chunked_repair(bytes, &rep);
  if (rep.clean()) {
    out << path << ": intact, nothing to repair\n";
    return 0;
  }
  // write_bytes lands via temp + fsync + rename, so a crash mid-repair
  // leaves the original archive untouched rather than a torn mix.
  write_bytes(path, healed);
  out << path << ": rebuilt " << rep.frames_repaired.size()
      << (rep.frames_repaired.size() == 1 ? " frame" : " frames")
      << " and " << rep.parity_shards_repaired
      << (rep.parity_shards_repaired == 1 ? " parity shard"
                                          : " parity shards")
      << "\n";
  for (const std::size_t f : rep.frames_repaired)
    out << "  frame " << f << ": rebuilt from parity, checksum ok\n";
  return 0;
}

int cmd_inspect(const CliArgs& args, std::ostream& out) {
  DPZ_REQUIRE(args.positional().size() == 2, "inspect needs <archive>");
  const std::vector<std::uint8_t> bytes = read_bytes(args.positional()[1]);
  const VerifyReport rep = verify_archive(bytes);

  out << "kind:     " << rep.kind << "\n"
      << "format:   v" << rep.version << "\n"
      << "bytes:    " << bytes.size() << "\n";
  if (rep.kind == "dpz" || rep.kind == "stored") {
    // The header parsed (verify walked it), so dpz_inspect's richer
    // geometry view is available too.
    const DpzArchiveInfo info = dpz_inspect(bytes);
    out << "dtype:    " << (info.double_precision ? "f64" : "f32") << "\n";
    out << "shape:    ";
    for (std::size_t d = 0; d < info.shape.size(); ++d)
      out << (d ? " x " : "") << info.shape[d];
    out << "\n";
    if (!info.stored_raw)
      out << "blocks:   " << info.layout.m << " x " << info.layout.n
          << (info.layout.padded ? " (padded)" : "") << "\n"
          << "k:        " << info.k << "\n"
          << "outliers: " << info.outlier_count << "\n";
  }
  // Header-claimed decode cost: what the archive says it will expand to
  // and the pre-flight working-set estimate a --max-memory budget admits
  // against. Printed from header metadata only — nothing is inflated —
  // so operators can size budgets without attempting the decode.
  if (const std::optional<DecodePreflight> pf = decode_preflight(bytes)) {
    out << "decoded:  " << human_bytes(pf->decoded_bytes)
        << " (header claim)\n"
        << "peak est: " << human_bytes(pf->peak_bytes)
        << " (pre-flight decode working set)\n";
  }
  if (rep.kind == "chunked") {
    // A corrupt header makes the geometry unreadable; the problems list
    // below already explains why, so the line is simply omitted.
    try {
      const ParityInfo parity = chunked_parity_info(bytes);
      if (parity.enabled())
        out << "parity:   " << parity.parity_k << "+" << parity.parity_m
            << " (" << parity.groups
            << (parity.groups == 1 ? " group, " : " groups, ")
            << human_bytes(parity.parity_bytes) << "; any "
            << parity.parity_m
            << " lost frames per group are recoverable)\n";
      else
        out << "parity:   none\n";
    } catch (const Error&) {
    }
  }
  out << "sections:\n";
  print_section_table(rep, out);
  for (const std::string& p : rep.problems) out << "problem:  " << p << "\n";
  return rep.ok ? 0 : 1;
}

int cmd_probe(const CliArgs& args, std::ostream& out) {
  DPZ_REQUIRE(args.positional().size() == 2, "probe needs <in.f32>");
  const std::string shape_text = args.get_string("shape", "");
  DPZ_REQUIRE(!shape_text.empty(), "--shape=AxBxC is required");
  const FloatArray data =
      read_f32(args.positional()[1], parse_shape(shape_text));

  const BlockLayout layout = choose_block_layout(data.size());
  Matrix blocks = to_blocks(data.flat(), layout);
  Rng vif_rng(2021);
  std::vector<double> vifs = sampled_vif(blocks, 0.01, 256, vif_rng);

  const DctPlan plan(layout.n);
  parallel_for(0, layout.m, [&](std::size_t i) {
    auto row = blocks.row(i);
    plan.forward(row, row);
  });

  SamplingConfig config;
  config.tve = args.get_double("tve", 0.99999);
  config.precomputed_vifs = std::move(vifs);
  const SamplingReport report = run_sampling(blocks, config);

  out << "blocks:      " << layout.m << " x " << layout.n << "\n"
      << "VIF median:  " << fixed(report.vif_median, 1)
      << (report.low_linearity ? "  (below cutoff 5: poorly compressible "
                                 "by DPZ)"
                               : "  (collinear: good DPZ candidate)")
      << "\n"
      << "estimated k: " << fixed(report.k_estimate, 1)
      << " per subset -> " << report.full_k << " total\n"
      << "CR estimate: " << fixed(report.cr_estimate_low, 1) << "X - "
      << fixed(report.cr_estimate_high, 1)
      << "X (paper accounting, basis excluded)\n";
  return 0;
}

int cmd_datasets(const CliArgs& args, std::ostream& out) {
  DPZ_REQUIRE(args.positional().size() == 2, "datasets needs <outdir>");
  const std::string outdir = args.positional()[1];
  const double scale = args.get_double("scale", 0.2);
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 2021));

  std::vector<std::string> names = dataset_names();
  const std::string filter = args.get_string("names", "");
  if (!filter.empty()) {
    names.clear();
    std::size_t pos = 0;
    while (pos <= filter.size()) {
      const std::size_t next = filter.find(',', pos);
      const std::string token = filter.substr(
          pos, next == std::string::npos ? next : next - pos);
      if (!token.empty()) names.push_back(token);
      if (next == std::string::npos) break;
      pos = next + 1;
    }
    DPZ_REQUIRE(!names.empty(), "--names produced an empty list");
  }

  std::filesystem::create_directories(outdir);
  std::ofstream manifest(outdir + "/MANIFEST.txt");
  manifest << "# name path shape seed scale\n";
  for (const std::string& name : names) {
    const Dataset ds = make_dataset(name, scale, seed);
    const std::string path = outdir + "/" + name + ".f32";
    write_f32(path, ds.data);

    std::string shape_text;
    for (std::size_t d = 0; d < ds.data.shape().size(); ++d) {
      if (d != 0) shape_text += 'x';
      shape_text += std::to_string(ds.data.shape()[d]);
    }
    manifest << name << " " << name << ".f32 " << shape_text << " " << seed
             << " " << scale << "\n";
    out << name << " -> " << path << " (" << shape_text << ", "
        << human_bytes(ds.data.size() * sizeof(float)) << ")\n";
  }
  out << "manifest: " << outdir << "/MANIFEST.txt\n";
  return 0;
}


// `dpz metrics export`: the registry in the Prometheus text exposition
// format, for node_exporter-style textfile collection (the bench harness
// writes the same rendering next to its JSON artifacts).
int cmd_metrics(const CliArgs& args, std::ostream& out) {
  DPZ_REQUIRE(args.positional().size() == 2 &&
                  args.positional()[1] == "export",
              "metrics needs the 'export' subcommand");
  out << obs::MetricsRegistry::instance().snapshot().to_prometheus();
  return 0;
}

// One parsed Chrome trace event ("X" phase complete events only).
struct TraceReportEvent {
  std::string name;
  std::string cat;
  int tid = 0;
  double ts_us = 0.0;
  double dur_us = 0.0;
  double queue_wait_us = -1.0;  // < 0: no attribution recorded
};

// Per-stage accumulation for the trace report.
struct StageTotals {
  std::size_t count = 0;
  double wall_us = 0.0;
  double self_us = 0.0;
};

// `dpz trace-report <trace.json>`: offline summary of a --trace file.
// Wall time per span name is the sum of its durations; self time
// subtracts the durations of immediate children (same thread, nested
// interval), so a stage that mostly waits on sub-spans shows near-zero
// self. Queue-wait attribution comes from the pool_task args; the
// critical-path estimate is the union of top-level span intervals (work
// no other recorded span overlaps on any thread cannot be hidden by
// parallelism).
int cmd_trace_report(const CliArgs& args, std::ostream& out) {
  DPZ_REQUIRE(args.positional().size() == 2,
              "trace-report needs <trace.json>");
  const std::vector<std::uint8_t> bytes = read_bytes(args.positional()[1]);
  json::Value doc;
  try {
    doc = json::parse(std::string(bytes.begin(), bytes.end()));
  } catch (const std::runtime_error& e) {
    throw FormatError(std::string("trace-report: ") + e.what());
  }
  const json::Value* events = doc.find("traceEvents");
  DPZ_REQUIRE(events != nullptr && events->is_array(),
              "trace-report: no traceEvents array in the document");

  std::vector<TraceReportEvent> parsed;
  parsed.reserve(events->items.size());
  for (const json::Value& e : events->items) {
    const json::Value* ph = e.find("ph");
    if (ph == nullptr || !ph->is_string() || ph->text != "X") continue;
    const json::Value* name = e.find("name");
    const json::Value* ts = e.find("ts");
    const json::Value* dur = e.find("dur");
    if (name == nullptr || !name->is_string() || ts == nullptr ||
        !ts->is_number() || dur == nullptr || !dur->is_number())
      continue;
    TraceReportEvent ev;
    ev.name = name->text;
    if (const json::Value* cat = e.find("cat");
        cat != nullptr && cat->is_string())
      ev.cat = cat->text;
    if (const json::Value* tid = e.find("tid");
        tid != nullptr && tid->is_number())
      ev.tid = static_cast<int>(tid->number);
    ev.ts_us = ts->number;
    ev.dur_us = dur->number;
    if (const json::Value* a = e.find("args")) {
      if (const json::Value* w = a->find("queue_wait_us");
          w != nullptr && w->is_number())
        ev.queue_wait_us = w->number;
    }
    parsed.push_back(std::move(ev));
  }
  if (parsed.empty()) {
    out << "trace-report: no complete spans in the trace\n";
    return 0;
  }

  // Sort within each thread by start time (ties: longer span first, so a
  // parent precedes children sharing its start), then sweep a stack of
  // open intervals to attribute child time to the immediate parent.
  std::map<int, std::vector<std::size_t>> by_tid;
  for (std::size_t i = 0; i < parsed.size(); ++i)
    by_tid[parsed[i].tid].push_back(i);

  std::vector<double> child_us(parsed.size(), 0.0);
  std::vector<std::pair<double, double>> top_level;  // [start, end) union
  for (auto& [tid, order] : by_tid) {
    std::sort(order.begin(), order.end(), [&](std::size_t a,
                                              std::size_t b) {
      if (parsed[a].ts_us != parsed[b].ts_us)
        return parsed[a].ts_us < parsed[b].ts_us;
      return parsed[a].dur_us > parsed[b].dur_us;
    });
    std::vector<std::size_t> stack;
    for (const std::size_t i : order) {
      const TraceReportEvent& ev = parsed[i];
      while (!stack.empty() &&
             ev.ts_us >= parsed[stack.back()].ts_us +
                             parsed[stack.back()].dur_us)
        stack.pop_back();
      if (stack.empty())
        top_level.emplace_back(ev.ts_us, ev.ts_us + ev.dur_us);
      else
        child_us[stack.back()] += ev.dur_us;
      stack.push_back(i);
    }
  }

  std::map<std::string, StageTotals> stages;
  for (std::size_t i = 0; i < parsed.size(); ++i) {
    StageTotals& t = stages[parsed[i].name];
    ++t.count;
    t.wall_us += parsed[i].dur_us;
    t.self_us += std::max(0.0, parsed[i].dur_us - child_us[i]);
  }

  out << "stage                  count        wall ms        self ms\n";
  for (const auto& [name, t] : stages) {
    out << "  " << name;
    for (std::size_t pad = name.size(); pad < 20; ++pad) out << ' ';
    const std::string count_text = std::to_string(t.count);
    for (std::size_t pad = count_text.size(); pad < 6; ++pad) out << ' ';
    out << count_text;
    const std::string wall = fixed(t.wall_us / 1000.0, 3);
    for (std::size_t pad = wall.size(); pad < 14; ++pad) out << ' ';
    out << wall;
    const std::string self = fixed(t.self_us / 1000.0, 3);
    for (std::size_t pad = self.size(); pad < 14; ++pad) out << ' ';
    out << self << "\n";
  }

  // Queue-wait vs run attribution from the pool_task args.
  double wait_us = 0.0;
  double run_us = 0.0;
  std::size_t pool_spans = 0;
  for (const TraceReportEvent& ev : parsed) {
    if (ev.queue_wait_us < 0.0) continue;
    ++pool_spans;
    wait_us += ev.queue_wait_us;
    run_us += ev.dur_us;
  }
  if (pool_spans != 0) {
    out << "pool: " << pool_spans << " tasks, queue-wait "
        << fixed(wait_us / 1000.0, 3) << " ms, run "
        << fixed(run_us / 1000.0, 3) << " ms ("
        << fixed(100.0 * wait_us / std::max(wait_us + run_us, 1e-9), 1)
        << "% waiting)\n";
  } else {
    out << "pool: no queue-wait attribution in the trace\n";
  }

  // Critical-path estimate: the union of top-level intervals. Wall span
  // is first start to last end across every thread.
  std::sort(top_level.begin(), top_level.end());
  double union_us = 0.0;
  double cursor = 0.0;
  bool started = false;
  for (const auto& [lo, hi] : top_level) {
    if (!started || lo > cursor) {
      union_us += hi - lo;
      cursor = hi;
      started = true;
    } else if (hi > cursor) {
      union_us += hi - cursor;
      cursor = hi;
    }
  }
  double first = parsed.front().ts_us;
  double last = first;
  for (const TraceReportEvent& ev : parsed) {
    first = std::min(first, ev.ts_us);
    last = std::max(last, ev.ts_us + ev.dur_us);
  }
  out << "critical path: " << fixed(union_us / 1000.0, 3)
      << " ms estimated over a " << fixed((last - first) / 1000.0, 3)
      << " ms wall span\n";

  // Per-frame outliers: frame-category spans more than twice the median
  // duration.
  std::vector<std::size_t> frames;
  for (std::size_t i = 0; i < parsed.size(); ++i)
    if (parsed[i].cat == "frame") frames.push_back(i);
  if (!frames.empty()) {
    std::vector<double> durs;
    durs.reserve(frames.size());
    for (const std::size_t i : frames) durs.push_back(parsed[i].dur_us);
    std::sort(durs.begin(), durs.end());
    const double median = durs[durs.size() / 2];
    std::vector<std::size_t> outliers;
    for (const std::size_t i : frames)
      if (parsed[i].dur_us > 2.0 * median && parsed[i].dur_us > median)
        outliers.push_back(i);
    out << "frame spans: " << frames.size() << ", median "
        << fixed(median / 1000.0, 3) << " ms\n";
    if (outliers.empty()) {
      out << "frame outliers: none (no span over 2x the median)\n";
    } else {
      std::sort(outliers.begin(), outliers.end(),
                [&](std::size_t a, std::size_t b) {
                  return parsed[a].dur_us > parsed[b].dur_us;
                });
      out << "frame outliers (over 2x the median):\n";
      for (const std::size_t i : outliers)
        out << "  " << parsed[i].name << " tid " << parsed[i].tid
            << " at " << fixed(parsed[i].ts_us / 1000.0, 3) << " ms: "
            << fixed(parsed[i].dur_us / 1000.0, 3) << " ms ("
            << fixed(parsed[i].dur_us / std::max(median, 1e-9), 1)
            << "x median)\n";
    }
  }
  return 0;
}

}  // namespace

std::vector<std::size_t> parse_shape(const std::string& text) {
  std::vector<std::size_t> shape;
  std::size_t pos = 0;
  while (pos <= text.size()) {
    const std::size_t next = text.find('x', pos);
    const std::string token =
        text.substr(pos, next == std::string::npos ? next : next - pos);
    if (token.empty() || token.find_first_not_of("0123456789") !=
                             std::string::npos)
      throw InvalidArgument("malformed shape '" + text +
                            "' (expected e.g. 1800x3600)");
    shape.push_back(static_cast<std::size_t>(std::stoull(token)));
    if (next == std::string::npos) break;
    pos = next + 1;
  }
  DPZ_REQUIRE(!shape.empty() && shape.size() <= 4,
              "shape must have 1-4 dimensions");
  for (const std::size_t d : shape)
    DPZ_REQUIRE(d > 0, "shape extents must be positive");
  return shape;
}

int run_cli(int argc, const char* const* argv, std::ostream& out,
            std::ostream& err) {
  // Honor DPZ_LOG_LEVEL before any command code can emit an event, and
  // keep the breadcrumb dump decision visible to the catch handler.
  obs::set_log_level_from_env();
  bool diagnose = false;
  try {
    const CliArgs args(argc, argv,
                       {"shape", "scheme", "tve", "knee", "sampling",
                        "error-bound", "dct-keep", "dtype", "verify",
                        "components", "scale", "names", "seed",
                        "target-cr", "target-psnr", "chunk", "parity",
                        "threads", "isa", "best-effort", "fill", "scrub",
                        "trace", "metrics", "max-memory", "deadline-ms",
                        "log", "diagnose", "help"});
    if (args.positional().empty() || args.has("help")) {
      out << kUsage;
      return args.has("help") ? 0 : 2;
    }
    diagnose = args.get_bool("diagnose", false);

    // Structured-log streaming: mirror every captured event to a JSONL
    // file for the lifetime of the command. The flight recorder ring
    // keeps recording either way.
    const std::string log_path = args.get_string("log", "");
    std::optional<obs::LogSinkScope> log_sink;
    if (!log_path.empty()) {
      log_sink.emplace(log_path);
      if (!log_sink->ok())
        throw IoError("cannot open log file: " + log_path);
    }

    // Pin the kernel dispatch before any command touches data. Dispatch
    // is otherwise resolved from the CPU (and DPZ_FORCE_ISA) on first
    // use; an unknown or unexecutable name is a clean usage error.
    const std::string isa_text = args.get_string("isa", "");
    if (!isa_text.empty()) {
      const std::optional<simd::Isa> isa = simd::parse_isa(isa_text);
      if (!isa)
        throw InvalidArgument("unknown --isa '" + isa_text +
                              "' (use scalar, avx2, or neon)");
      simd::set_force_isa(isa);
    }

    // Telemetry flags apply to every command: enable recording before the
    // dispatch, flush the trace / print the metrics after it returns.
    const std::string trace_path = args.get_string("trace", "");
    const bool want_metrics = args.has("metrics");
    std::optional<obs::ScopedTelemetry> telemetry;
    if (!trace_path.empty() || want_metrics) telemetry.emplace(true);

    const std::string& command = args.positional()[0];
    obs::log_event(obs::Event::kCommandStart, obs::LogLevel::kInfo,
                   StatusCode::kOk, {}, command);
    int rc = 2;
    if (command == "compress") {
      rc = cmd_compress(args, out);
    } else if (command == "decompress") {
      rc = cmd_decompress(args, out);
    } else if (command == "info") {
      rc = cmd_info(args, out);
    } else if (command == "verify") {
      rc = cmd_verify(args, out);
    } else if (command == "repair") {
      rc = cmd_repair(args, out);
    } else if (command == "inspect") {
      rc = cmd_inspect(args, out);
    } else if (command == "probe") {
      rc = cmd_probe(args, out);
    } else if (command == "datasets") {
      rc = cmd_datasets(args, out);
    } else if (command == "metrics") {
      rc = cmd_metrics(args, out);
    } else if (command == "trace-report") {
      rc = cmd_trace_report(args, out);
    } else {
      err << "unknown command '" << command << "'\n" << kUsage;
      return 2;
    }

    if (!trace_path.empty()) {
      const obs::TraceRecorder& recorder = obs::TraceRecorder::instance();
      if (!recorder.write_file(trace_path))
        throw IoError("cannot write trace file: " + trace_path);
      out << "trace: " << trace_path << " (" << recorder.event_count()
          << " spans)\n";
    }
    if (want_metrics) {
      const obs::MetricsSnapshot snap =
          obs::MetricsRegistry::instance().snapshot();
      if (args.get_string("metrics", "") == "json")
        out << snap.to_json() << "\n";
      else
        out << "metrics:\n" << snap.to_text();
    }
    return rc;
  } catch (const Error& e) {
    obs::log_error(obs::Event::kErrorRaised, e.code(), {}, e.what());
    err << "error: " << e.what() << "\n";
    if (diagnose) err << obs::FlightRecorder::instance().last_error_report();
    return exit_code_for(e.code());
  } catch (const std::bad_alloc&) {
    // The allocator failed before (or without) a configured budget
    // tripping; report it like a budget rejection instead of letting the
    // exception terminate the process.
    err << "error: allocation failed (out of memory)\n";
    return exit_code_for(StatusCode::kResourceExhausted);
  }
}

}  // namespace dpz::tools
