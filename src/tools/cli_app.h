// The `dpz` command-line compressor.
//
// Subcommands (raw little-endian float32 files, SDRBench convention):
//   dpz compress   <in.f32> <out.dpz> --shape=AxBxC [--scheme=l|s]
//                  [--tve=0.99999 | --knee[=1d|polyn]] [--sampling]
//                  [--error-bound=P] [--dct-keep=f]
//   dpz decompress <in.dpz> <out.f32> [--components=k]
//   dpz info       <in.dpz>
//   dpz probe      <in.f32> --shape=AxBxC [--tve=0.99999]
//
// The command logic lives in run_cli so the test suite can drive it; the
// binary's main() is a two-line wrapper.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace dpz::tools {

/// Parses "1800x3600"-style shape strings (1-4 dimensions).
/// Throws InvalidArgument on malformed input.
std::vector<std::size_t> parse_shape(const std::string& text);

/// Runs the CLI. Returns the process exit code; writes human-readable
/// output to `out` and diagnostics to `err`.
int run_cli(int argc, const char* const* argv, std::ostream& out,
            std::ostream& err);

}  // namespace dpz::tools
