// Figure 7: visualization of the CLDHGH field, original vs decompressed,
// at the paper's two operating points:
//   (b)-(d) all three compressors tuned to CR ~ 10.5X  -> compare PSNR;
//   (d)-(f) all three tuned to PSNR ~ 26 dB            -> compare CR.
// Writes PGM renders for visual inspection and prints the CR/PSNR rows.
// Shape to reproduce: at matched CR, DPZ's PSNR rivals SZ and crushes
// ZFP; at matched (low) PSNR, DPZ's CR is far higher than ZFP's.
#include <cmath>
#include <iostream>
#include <memory>

#include "baselines/szlike.h"
#include "baselines/zfplike.h"
#include "bench_common.h"
#include "core/analysis.h"
#include "io/image.h"
#include "metrics/metrics.h"

namespace {

using namespace dpz;
using namespace dpz::bench;

struct OperatingPoint {
  std::string compressor;
  std::string setting;
  double cr = 0.0;
  double psnr = 0.0;
  FloatArray reconstruction;
};

// Sweeps a family of settings and returns the point whose `metric` first
// meets `target` (metrics are monotone along each sweep).
template <typename Fn>
OperatingPoint find_point(const FloatArray& data, Fn&& evaluate_setting,
                          const std::vector<double>& settings,
                          bool match_cr, double target) {
  OperatingPoint best;
  double best_gap = 1e300;
  for (const double s : settings) {
    OperatingPoint p = evaluate_setting(s);
    const double value = match_cr ? p.cr : p.psnr;
    const double gap = std::abs(value - target);
    if (gap < best_gap) {
      best_gap = gap;
      best = std::move(p);
    }
  }
  (void)data;
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  const BenchOptions opt = parse_options(argc, argv);
  std::cout << "=== Figure 7: CLDHGH visualization operating points ===\n\n";

  const Dataset ds = make_dataset("CLDHGH", opt.scale, opt.seed);
  const std::uint64_t original_bytes = ds.data.size() * sizeof(float);
  write_pgm(artifact_path(opt, "fig07_original.pgm"), ds.data, 0.0F, 1.0F);

  const DpzAnalysis analysis(ds.data);

  // Setting <= 0 selects knee-point k (the aggressive low-rate end of
  // DPZ's operating curve); positive settings are TVE thresholds.
  auto dpz_point = [&](double setting) {
    OperatingPoint p;
    QuantizerConfig qcfg;
    qcfg.error_bound = 1e-4;
    qcfg.wide_codes = true;
    const std::size_t k = setting <= 0.0
                              ? analysis.k_for_knee(KneeFit::kFit1D)
                              : analysis.k_for_tve(setting);
    const auto ev = analysis.evaluate(k, qcfg);
    p.compressor = "DPZ-s";
    p.setting = setting <= 0.0 ? "knee(1D)" : tve_label(setting);
    p.cr = compression_ratio(original_bytes, ev.accounting.archive_bytes);
    p.psnr = ev.stage3_error.psnr_db;
    p.reconstruction = ev.reconstructed;
    return p;
  };
  auto sz_point = [&](double rel) {
    OperatingPoint p;
    SzLikeConfig config;
    config.relative_bound = rel;
    const auto archive = szlike_compress(ds.data, config);
    p.compressor = "SZ-like";
    p.setting = "rel " + scientific(rel, 0);
    p.cr = compression_ratio(original_bytes, archive.size());
    p.reconstruction = szlike_decompress(archive);
    p.psnr = compute_error_stats(ds.data.flat(), p.reconstruction.flat())
                 .psnr_db;
    return p;
  };
  auto zfp_point = [&](double precision) {
    OperatingPoint p;
    ZfpLikeConfig config;
    config.precision = static_cast<unsigned>(precision);
    const auto archive = zfplike_compress(ds.data, config);
    p.compressor = "ZFP-like";
    p.setting = "prec " + std::to_string(config.precision);
    p.cr = compression_ratio(original_bytes, archive.size());
    p.reconstruction = zfplike_decompress(archive);
    p.psnr = compute_error_stats(ds.data.flat(), p.reconstruction.flat())
                 .psnr_db;
    return p;
  };

  std::vector<double> tves = tve_ladder();
  tves.insert(tves.begin(), 0.0);  // knee-point: the aggressive end
  const std::vector<double> rels{1e-1, 3e-2, 1e-2, 3e-3, 1e-3, 1e-4, 1e-5};
  const std::vector<double> precisions{2, 4, 6, 8, 10, 12, 16, 20, 24};

  TablePrinter table(
      {"panel", "compressor", "setting", "CR", "PSNR (dB)"});

  // Matched-CR panel (paper: CR ~ 10.5X).
  const double target_cr = 10.5;
  std::cout << "matching CR ~ " << target_cr << "X...\n";
  int panel = 'b';
  for (const OperatingPoint& p :
       {find_point(ds.data, dpz_point, tves, true, target_cr),
        find_point(ds.data, sz_point, rels, true, target_cr),
        find_point(ds.data, zfp_point, precisions, true, target_cr)}) {
    table.add_row({std::string(1, static_cast<char>(panel)) + " (CR~10.5)",
                   p.compressor, p.setting, fixed(p.cr, 1),
                   fixed(p.psnr, 1)});
    write_pgm(artifact_path(opt, "fig07_cr10_" + p.compressor + ".pgm"),
              p.reconstruction, 0.0F, 1.0F);
    ++panel;
  }

  // Matched-PSNR panel (paper: PSNR ~ 26 dB).
  const double target_psnr = 26.0;
  std::cout << "matching PSNR ~ " << target_psnr << " dB...\n";
  for (const OperatingPoint& p :
       {find_point(ds.data, dpz_point, tves, false, target_psnr),
        find_point(ds.data, sz_point, rels, false, target_psnr),
        find_point(ds.data, zfp_point, precisions, false, target_psnr)}) {
    table.add_row({std::string(1, static_cast<char>(panel)) + " (PSNR~26)",
                   p.compressor, p.setting, fixed(p.cr, 1),
                   fixed(p.psnr, 1)});
    write_pgm(artifact_path(opt, "fig07_psnr26_" + p.compressor + ".pgm"),
              p.reconstruction, 0.0F, 1.0F);
    ++panel;
  }

  std::cout << "\n";
  table.print();
  std::cout << "(renders written to " << opt.outdir
            << "; paper: at CR~10.5 DPZ/SZ >> ZFP in PSNR, at PSNR~26 DPZ "
               ">> SZ >> ZFP in CR)\n";
  maybe_write_csv(opt, "fig07_visualization", table);
  return 0;
}
