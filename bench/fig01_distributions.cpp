// Figure 1: value distribution of a CESM FLDSC-class field before and
// after the discrete cosine transform. The paper's point: the DCT
// concentrates the (broad, multi-modal) raw distribution into a few
// large-magnitude coefficients plus a near-zero mass — the property Stage
// 1 exploits. Prints 48-bin histograms of both forms plus summary stats.
#include <algorithm>
#include <cmath>
#include <iostream>

#include "bench_common.h"
#include "core/blocking.h"
#include "dsp/dct.h"
#include "stats/descriptive.h"
#include "stats/histogram.h"

namespace {

using namespace dpz;
using namespace dpz::bench;

}  // namespace

int main(int argc, char** argv) {
  const BenchOptions opt = parse_options(argc, argv);
  std::cout << "=== Figure 1: FLDSC distribution, raw vs DCT domain ===\n";
  std::cout << "scale " << opt.scale << ", seed " << opt.seed << "\n\n";

  const Dataset ds = make_dataset("FLDSC", opt.scale, opt.seed);
  std::vector<double> raw(ds.data.size());
  for (std::size_t i = 0; i < raw.size(); ++i)
    raw[i] = static_cast<double>(ds.data[i]);

  // Stage-1 view: block decomposition + per-block DCT.
  const BlockLayout layout = choose_block_layout(ds.data.size());
  Matrix blocks = to_blocks(ds.data.flat(), layout);
  const DctPlan plan(layout.n);
  for (std::size_t i = 0; i < layout.m; ++i) {
    auto row = blocks.row(i);
    plan.forward(row, row);
  }
  std::vector<double> coeffs(blocks.flat().begin(), blocks.flat().end());

  std::cout << "(a) flattened original data (" << raw.size()
            << " values, mean " << fixed(mean_of(raw), 2) << ", std "
            << fixed(stddev_of(raw), 2) << ")\n";
  std::cout << Histogram::auto_ranged(raw, 48).render_ascii(48) << "\n";

  std::cout << "(b) block-DCT coefficients (" << layout.m << " blocks x "
            << layout.n << " points)\n";
  // Clip the histogram to the central 99% so the enormous DC outliers do
  // not flatten the display; report the tails numerically.
  std::vector<double> sorted = coeffs;
  std::sort(sorted.begin(), sorted.end());
  const double lo = quantile_of(coeffs, 0.005);
  const double hi = quantile_of(coeffs, 0.995);
  std::cout << Histogram(coeffs, 48, lo, hi).render_ascii(48);

  double near_zero = 0;
  for (const double c : coeffs)
    if (std::abs(c) < 1e-3 * std::abs(sorted.back())) ++near_zero;
  std::cout << "\ncoefficient range [" << scientific(sorted.front(), 2)
            << ", " << scientific(sorted.back(), 2) << "]\n";
  std::cout << "fraction of coefficients below 0.1% of the peak magnitude: "
            << fixed(100.0 * near_zero / static_cast<double>(coeffs.size()),
                     1)
            << "% (the mass Stage 2 discards)\n";

  TablePrinter table({"form", "mean", "std", "p0.5", "p99.5"});
  table.add_row({"raw", fixed(mean_of(raw), 3), fixed(stddev_of(raw), 3),
                 fixed(quantile_of(raw, 0.005), 3),
                 fixed(quantile_of(raw, 0.995), 3)});
  table.add_row({"dct", scientific(mean_of(coeffs), 2),
                 scientific(stddev_of(coeffs), 2), scientific(lo, 2),
                 scientific(hi, 2)});
  std::cout << "\n";
  table.print();
  maybe_write_csv(opt, "fig01_distributions", table);
  return 0;
}
