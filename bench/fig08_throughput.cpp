// Figure 8: compression and decompression time versus compression ratio
// for the three compressors on the Isotropic dataset, plus the sampling
// strategy's speedup over non-sampling DPZ.
//
// Shapes to reproduce: DPZ is slower than SZ/ZFP to compress (PCA cost)
// but narrows the gap on decompression as CR grows (fewer components to
// back-project); sampling speeds DPZ compression up (paper: 1.23X mean).
#include <iostream>

#include "baselines/szlike.h"
#include "baselines/zfplike.h"
#include "bench_common.h"
#include "core/dpz.h"
#include "metrics/metrics.h"
#include "util/timer.h"

namespace {

using namespace dpz;
using namespace dpz::bench;

}  // namespace

int main(int argc, char** argv) {
  const BenchOptions opt = parse_options(argc, argv);
  std::cout << "=== Figure 8: compression/decompression time vs CR "
               "(Isotropic) ===\n\n";

  const Dataset ds = make_dataset("Isotropic", opt.scale, opt.seed);
  const std::uint64_t original_bytes = ds.data.size() * sizeof(float);
  const double mb = static_cast<double>(original_bytes) / (1024.0 * 1024.0);

  TablePrinter table({"compressor", "setting", "CR", "comp s", "decomp s",
                      "comp MB/s", "decomp MB/s"});

  auto add_row = [&](const std::string& comp_name,
                     const std::string& setting, double cr, double ct,
                     double dt) {
    table.add_row({comp_name, setting, fixed(cr, 2), fixed(ct, 3),
                   fixed(dt, 3), fixed(mb / ct, 1), fixed(mb / dt, 1)});
  };

  // DPZ over the TVE ladder (full pipeline each time: this is a timing
  // figure, so no cached analysis).
  for (const double tve : {0.999, 0.99999, 0.9999999}) {
    DpzConfig config = DpzConfig::strict();
    config.tve = tve;
    Timer timer;
    const auto archive = dpz_compress(ds.data, config);
    const double ct = timer.reset();
    const FloatArray back = dpz_decompress(archive);
    const double dt = timer.elapsed();
    (void)back;
    add_row("DPZ-s", tve_label(tve),
            compression_ratio(original_bytes, archive.size()), ct, dt);
  }

  // DPZ with the sampling strategy. The truncated eigensolver only wins
  // when k << M, so measure the speedup on a CESM-class field (small k)
  // the way the paper's average does; broadband turbulence keeps k ~ M
  // and falls back to the dense solver.
  {
    const Dataset smooth = make_dataset("FLDSC", opt.scale, opt.seed);
    DpzConfig config = DpzConfig::strict();
    config.tve = 0.99999;
    Timer timer;
    const auto plain_archive = dpz_compress(smooth.data, config);
    const double plain_ct = timer.elapsed();

    config.use_sampling = true;
    timer.reset();
    const auto sampled_archive = dpz_compress(smooth.data, config);
    const double sampled_ct = timer.reset();
    const FloatArray back = dpz_decompress(sampled_archive);
    const double dt = timer.elapsed();
    (void)back;
    add_row("DPZ-s+sampling (FLDSC)", tve_label(0.99999),
            compression_ratio(smooth.data.size() * sizeof(float),
                              sampled_archive.size()),
            sampled_ct, dt);
    std::cout << "sampling speedup over non-sampling DPZ on FLDSC: "
              << fixed(plain_ct / sampled_ct, 2) << "X (paper: ~1.23X "
              << "averaged over its datasets)\n\n";
    (void)plain_archive;
  }

  for (const double rel : {1e-2, 1e-3, 1e-4}) {
    SzLikeConfig config;
    config.relative_bound = rel;
    Timer timer;
    const auto archive = szlike_compress(ds.data, config);
    const double ct = timer.reset();
    const FloatArray back = szlike_decompress(archive);
    const double dt = timer.elapsed();
    (void)back;
    add_row("SZ-like", "rel " + scientific(rel, 0),
            compression_ratio(original_bytes, archive.size()), ct, dt);
  }

  for (const unsigned precision : {8U, 16U, 24U}) {
    ZfpLikeConfig config;
    config.precision = precision;
    Timer timer;
    const auto archive = zfplike_compress(ds.data, config);
    const double ct = timer.reset();
    const FloatArray back = zfplike_decompress(archive);
    const double dt = timer.elapsed();
    (void)back;
    add_row("ZFP-like", "prec " + std::to_string(precision),
            compression_ratio(original_bytes, archive.size()), ct, dt);
  }

  table.print();
  maybe_write_csv(opt, "fig08_throughput", table);
  return 0;
}
