// End-to-end micro-benchmarks of the compressors themselves: DPZ (with
// and without sampling), the shared-basis codec, and all three baselines
// on one CESM-class field.
#include <benchmark/benchmark.h>

#include "baselines/dctzlike.h"
#include "baselines/szlike.h"
#include "baselines/zfplike.h"
#include "core/dpz.h"
#include "core/shared_basis.h"
#include "data/datasets.h"

namespace {

using namespace dpz;

const FloatArray& test_field() {
  static const FloatArray field =
      make_dataset("FLDSC", 0.1, 2021).data;  // 180 x 360
  return field;
}

void BM_DpzCompress(benchmark::State& state) {
  DpzConfig config = DpzConfig::strict();
  config.tve = 0.99999;
  config.use_sampling = state.range(0) != 0;
  for (auto _ : state) {
    const auto archive = dpz_compress(test_field(), config);
    benchmark::DoNotOptimize(archive.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(test_field().size()) *
                          4);
}
BENCHMARK(BM_DpzCompress)->Arg(0)->Arg(1);

void BM_DpzDecompress(benchmark::State& state) {
  DpzConfig config = DpzConfig::strict();
  config.tve = 0.99999;
  const auto archive = dpz_compress(test_field(), config);
  for (auto _ : state) {
    const FloatArray out = dpz_decompress(archive);
    benchmark::DoNotOptimize(out.flat().data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(test_field().size()) *
                          4);
}
BENCHMARK(BM_DpzDecompress);

void BM_SharedBasisCompress(benchmark::State& state) {
  DpzConfig config = DpzConfig::strict();
  config.tve = 0.99999;
  const SharedBasisCodec codec =
      SharedBasisCodec::train(test_field(), config);
  for (auto _ : state) {
    const auto archive = codec.compress(test_field());
    benchmark::DoNotOptimize(archive.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(test_field().size()) *
                          4);
}
BENCHMARK(BM_SharedBasisCompress);

void BM_SzLikeCompress(benchmark::State& state) {
  SzLikeConfig config;
  config.relative_bound = 1e-3;
  for (auto _ : state) {
    const auto archive = szlike_compress(test_field(), config);
    benchmark::DoNotOptimize(archive.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(test_field().size()) *
                          4);
}
BENCHMARK(BM_SzLikeCompress);

void BM_DctzLikeCompress(benchmark::State& state) {
  DctzLikeConfig config;
  config.relative_bound = 1e-4;
  for (auto _ : state) {
    const auto archive = dctzlike_compress(test_field(), config);
    benchmark::DoNotOptimize(archive.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(test_field().size()) *
                          4);
}
BENCHMARK(BM_DctzLikeCompress);

void BM_ZfpLikeCompress(benchmark::State& state) {
  ZfpLikeConfig config;
  config.precision = 16;
  for (auto _ : state) {
    const auto archive = zfplike_compress(test_field(), config);
    benchmark::DoNotOptimize(archive.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(test_field().size()) *
                          4);
}
BENCHMARK(BM_ZfpLikeCompress);

}  // namespace

BENCHMARK_MAIN();
