// Ablation of the basis-encoding design choice (DESIGN.md SS2 point 4):
// the paper's accounting ignores the PCA basis entirely, but a real
// archive must carry it. Compares encodings of the stored basis:
//   f64 raw + zlib, f32 raw + zlib, f32 byte-shuffled + zlib (the
//   production choice), and f32 shuffled at zlib level 9.
#include <iostream>

#include "bench_common.h"
#include "codec/bytes.h"
#include "codec/shuffle.h"
#include "codec/zlib_codec.h"
#include "core/analysis.h"

namespace {

using namespace dpz;
using namespace dpz::bench;

}  // namespace

int main(int argc, char** argv) {
  const BenchOptions opt = parse_options(argc, argv);
  std::cout << "=== Ablation: PCA-basis encoding ===\n\n";

  TablePrinter table({"dataset", "k", "raw f32 bytes", "f64+zlib",
                      "f32+zlib", "f32+shuffle+zlib", "shuffle gain"});

  for (const char* name : {"FLDSC", "CLDHGH", "Isotropic"}) {
    const Dataset ds = make_dataset(name, opt.scale, opt.seed);
    const DpzAnalysis analysis(ds.data);
    const std::size_t k = analysis.k_for_tve(0.99999);
    const std::size_t m = analysis.layout().m;

    ByteWriter f32_bytes, f64_bytes;
    for (std::size_t i = 0; i < m; ++i)
      for (std::size_t j = 0; j < k; ++j) {
        f32_bytes.put_f32(
            static_cast<float>(analysis.model().components(i, j)));
        f64_bytes.put_f64(analysis.model().components(i, j));
      }

    const std::size_t raw = f32_bytes.size();
    const std::size_t z64 = zlib_compress(f64_bytes.bytes()).size();
    const std::size_t z32 = zlib_compress(f32_bytes.bytes()).size();
    const std::size_t zshuf =
        zlib_compress(shuffle_bytes(f32_bytes.bytes(), sizeof(float)))
            .size();

    table.add_row({name, std::to_string(k), human_bytes(raw),
                   human_bytes(z64), human_bytes(z32), human_bytes(zshuf),
                   fixed(static_cast<double>(z32) /
                             static_cast<double>(zshuf),
                         2) +
                       "X"});
    std::cout << "finished " << name << "\n";
  }

  std::cout << "\n";
  table.print();
  std::cout << "(the shuffle filter is what makes carrying the basis "
               "affordable; the paper's CR numbers exclude it entirely)\n";
  maybe_write_csv(opt, "ablation_basis_encoding", table);
  return 0;
}
