// Table IV: accuracy lost between Stage 1&2 (exact k-PCA scores) and
// Stage 3 (quantized scores), in delta-PSNR (dB), versus TVE.
//
// Shapes to reproduce: the loss grows as TVE tightens (the Stage-1&2
// reference keeps improving while quantization noise stays put), and
// DPZ-l loses far more than DPZ-s at "seven-nine" (the paper measures up
// to ~20 dB for DPZ-l vs a few dB for DPZ-s).
#include <cmath>
#include <iostream>

#include "bench_common.h"
#include "core/analysis.h"

namespace {

using namespace dpz;
using namespace dpz::bench;

}  // namespace

int main(int argc, char** argv) {
  const BenchOptions opt = parse_options(argc, argv);
  std::cout << "=== Table IV: delta PSNR between Stage 1&2 and Stage 3 "
               "===\n\n";

  TablePrinter table({"dataset", "TVE", "scheme", "stage1&2 PSNR",
                      "stage3 PSNR", "delta PSNR (dB)"});

  for (const std::string& name : table_datasets()) {
    const Dataset ds = make_dataset(name, opt.scale, opt.seed);
    const DpzAnalysis analysis(ds.data);

    for (const double tve : tve_table_points()) {
      const std::size_t k = analysis.k_for_tve(tve);
      for (const bool strict : {false, true}) {
        QuantizerConfig qcfg;
        qcfg.error_bound = strict ? 1e-4 : 1e-3;
        qcfg.wide_codes = strict;
        const auto ev = analysis.evaluate(k, qcfg);
        const double exact = ev.stage12_error.psnr_db;
        const double quantized = ev.stage3_error.psnr_db;
        const double delta =
            std::isinf(exact) ? 0.0 : std::max(0.0, exact - quantized);
        table.add_row({name, tve_label(tve), strict ? "DPZ-s" : "DPZ-l",
                       std::isinf(exact) ? "inf" : fixed(exact, 2),
                       fixed(quantized, 2), fixed(delta, 3)});
      }
    }
    std::cout << "finished " << name << "\n";
  }

  std::cout << "\n";
  table.print();
  std::cout << "(paper: the loss rises with TVE and DPZ-l loses far more "
               "than DPZ-s at seven-nine)\n";
  maybe_write_csv(opt, "table4_psnr_loss", table);
  return 0;
}
