// Figure 4: reconstruction error of four transform combinations on a
// FLDSC-class 2-D field at a fixed feature-count reduction of 5X (keep
// 20% of features, discard the rest):
//   (a) single-stage DCT      — keep the top 20% coefficients per block
//   (b) single-stage PCA      — keep the top 20% components (spatial)
//   (c) DCT on PCA components — PCA first, then per-component DCT top-20%
//   (d) PCA on DCT coefficients — DPZ's Stage 1&2 order
// The paper's finding to reproduce: (d) yields the smallest error and (c)
// the largest. Writes error maps (PPM, blue-white-red) next to the CSV.
#include <algorithm>
#include <cmath>
#include <iostream>

#include "bench_common.h"
#include "core/blocking.h"
#include "dsp/dct.h"
#include "io/image.h"
#include "linalg/pca.h"
#include "metrics/metrics.h"
#include "util/thread_pool.h"

namespace {

using namespace dpz;
using namespace dpz::bench;

constexpr double kKeepFraction = 0.2;  // 5X reduction in kept features

// Zeroes all but the `keep` largest-magnitude entries of each matrix row.
void keep_topk_per_row(Matrix& m, std::size_t keep) {
  parallel_for(0, m.rows(), [&](std::size_t i) {
    auto row = m.row(i);
    std::vector<double> mags(row.begin(), row.end());
    for (double& v : mags) v = std::abs(v);
    std::nth_element(mags.begin(), mags.begin() + (keep - 1), mags.end(),
                     std::greater<double>());
    const double threshold = mags[keep - 1];
    std::size_t kept = 0;
    for (double& v : row) {
      if (std::abs(v) >= threshold && kept < keep) {
        ++kept;
      } else {
        v = 0.0;
      }
    }
  });
}

void dct_rows(Matrix& m, bool inverse) {
  const DctPlan plan(m.cols());
  parallel_for(0, m.rows(), [&](std::size_t i) {
    auto row = m.row(i);
    if (inverse) {
      plan.inverse(row, row);
    } else {
      plan.forward(row, row);
    }
  });
}

FloatArray assemble(const Matrix& blocks, const BlockLayout& layout,
                    const FloatArray& like) {
  FloatArray out(like.shape());
  from_blocks(blocks, layout, out.flat());
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const BenchOptions opt = parse_options(argc, argv);
  std::cout << "=== Figure 4: transform combinations at 5X feature "
               "reduction (FLDSC) ===\n\n";

  const Dataset ds = make_dataset("FLDSC", opt.scale, opt.seed);
  const BlockLayout layout = choose_block_layout(ds.data.size());
  const Matrix spatial = to_blocks(ds.data.flat(), layout);
  const auto keep_cols = std::max<std::size_t>(
      1, static_cast<std::size_t>(kKeepFraction *
                                  static_cast<double>(layout.n)));
  const auto keep_rows = std::max<std::size_t>(
      1, static_cast<std::size_t>(kKeepFraction *
                                  static_cast<double>(layout.m)));

  struct Combo {
    std::string name;
    FloatArray reconstruction;
  };
  std::vector<Combo> combos;

  // (a) DCT only: top-20% coefficients per block.
  {
    Matrix z = spatial;
    dct_rows(z, false);
    keep_topk_per_row(z, keep_cols);
    dct_rows(z, true);
    combos.push_back({"DCT", assemble(z, layout, ds.data)});
  }

  // (b) PCA only (spatial domain): top-20% components.
  const PcaModel spatial_pca = fit_pca(spatial);
  {
    const Matrix scores = spatial_pca.transform(spatial, keep_rows);
    combos.push_back(
        {"PCA", assemble(spatial_pca.inverse_transform(scores), layout,
                         ds.data)});
  }

  // (c) DCT on PCA components: full PCA first, then per-component DCT with
  // top-20% coefficient selection.
  {
    Matrix scores = spatial_pca.transform(spatial, layout.m);
    dct_rows(scores, false);
    keep_topk_per_row(scores, keep_cols);
    dct_rows(scores, true);
    combos.push_back(
        {"DCT on PCA", assemble(spatial_pca.inverse_transform(scores),
                                layout, ds.data)});
  }

  // (d) PCA on DCT coefficients (DPZ Stage 1&2): block DCT, then top-20%
  // PCA components.
  {
    Matrix z = spatial;
    dct_rows(z, false);
    const PcaModel dct_pca = fit_pca(z);
    Matrix scores = dct_pca.transform(z, keep_rows);
    Matrix back = dct_pca.inverse_transform(scores);
    dct_rows(back, true);
    combos.push_back({"PCA on DCT", assemble(back, layout, ds.data)});
  }

  TablePrinter table({"combination", "MSE", "PSNR (dB)", "max abs err",
                      "mean rel err"});
  for (const Combo& combo : combos) {
    const ErrorStats err =
        compute_error_stats(ds.data.flat(), combo.reconstruction.flat());
    table.add_row({combo.name, scientific(err.mse, 3),
                   fixed(err.psnr_db, 2), scientific(err.max_abs_error, 3),
                   scientific(err.mean_rel_error, 3)});

    // Error map for the figure.
    FloatArray error_field(ds.data.shape());
    for (std::size_t i = 0; i < error_field.size(); ++i)
      error_field[i] = ds.data[i] - combo.reconstruction[i];
    std::string file = combo.name;
    std::replace(file.begin(), file.end(), ' ', '_');
    write_error_ppm(artifact_path(opt, "fig04_error_" + file + ".ppm"),
                    error_field);
  }
  table.print();
  std::cout << "(paper: 'PCA on DCT' shows the least error, 'DCT on PCA' "
               "the most; error maps written to "
            << opt.outdir << ")\n";
  maybe_write_csv(opt, "fig04_transform_combos", table);
  return 0;
}
