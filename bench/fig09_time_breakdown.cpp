// Figure 9: breakdown of DPZ compression time by stage across datasets.
// Shape to reproduce: Stage 2 (PCA) and Stage 3 (quantization) dominate,
// since both scale with the coefficient dimensions (SS V-C5).
#include <iostream>

#include "bench_common.h"
#include "core/dpz.h"

namespace {

using namespace dpz;
using namespace dpz::bench;

}  // namespace

int main(int argc, char** argv) {
  const BenchOptions opt = parse_options(argc, argv);
  std::cout << "=== Figure 9: DPZ compression-time breakdown by stage "
               "===\n\n";

  TablePrinter table({"dataset", "total s", "stage1 DCT %", "stage2 PCA %",
                      "stage3 quant %", "zlib %"});

  for (const std::string& name : table_datasets()) {
    const Dataset ds = make_dataset(name, opt.scale, opt.seed);
    DpzConfig config = DpzConfig::strict();
    config.tve = 0.99999;
    DpzStats stats;
    const auto archive = dpz_compress(ds.data, config, &stats);
    (void)archive;

    const double total = stats.timers.grand_total();
    auto pct = [&](const char* stage) {
      return fixed(100.0 * stats.timers.total(stage) / total, 1) + "%";
    };
    table.add_row({name, fixed(total, 3), pct("stage1_dct"),
                   pct("stage2_pca"), pct("stage3_quantize"),
                   pct("zlib_encode")});
    std::cout << "finished " << name << "\n";
  }

  std::cout << "\n";
  table.print();
  std::cout << "(paper: Stage 2 and Stage 3 contribute most of the cost)\n";
  maybe_write_csv(opt, "fig09_time_breakdown", table);
  return 0;
}
