// Figure 3: number of selected features versus (i) cumulative information
// preserved — ECR for DCT (Eq. 1), TVE for PCA (Eq. 2) — and (ii) PSNR of
// the reconstruction, on a FLDSC-class field. The paper's headline
// observations to reproduce:
//   * ~1% of features already preserve > 90% of the information under
//     both metrics;
//   * PSNR of 75 dB is reached with ~35% (DCT) / ~20% (PCA) of features,
//     PCA needing fewer (which motivates the PCA-on-DCT pipeline).
#include <algorithm>
#include <cmath>
#include <iostream>

#include "bench_common.h"
#include "core/analysis.h"
#include "core/blocking.h"
#include "dsp/dct.h"
#include "metrics/metrics.h"
#include "stats/ecr.h"
#include "util/thread_pool.h"

namespace {

using namespace dpz;
using namespace dpz::bench;

// Reconstruction keeping only the k largest-magnitude DCT coefficients of
// each block (single-stage DCT feature selection).
FloatArray dct_topk_reconstruct(const FloatArray& data,
                                const BlockLayout& layout,
                                const Matrix& dct_blocks, double fraction) {
  Matrix kept = dct_blocks;
  const auto keep = static_cast<std::size_t>(
      std::ceil(fraction * static_cast<double>(layout.n)));
  parallel_for(0, layout.m, [&](std::size_t i) {
    auto row = kept.row(i);
    // Threshold at the keep-th largest magnitude within the block.
    std::vector<double> mags(row.begin(), row.end());
    for (double& m : mags) m = std::abs(m);
    std::nth_element(mags.begin(), mags.begin() + (keep - 1), mags.end(),
                     std::greater<double>());
    const double threshold = mags[keep - 1];
    std::size_t kept_count = 0;
    for (double& v : row) {
      if (std::abs(v) >= threshold && kept_count < keep) {
        ++kept_count;
      } else {
        v = 0.0;
      }
    }
  });
  const DctPlan plan(layout.n);
  parallel_for(0, layout.m, [&](std::size_t i) {
    auto row = kept.row(i);
    plan.inverse(row, row);
  });
  FloatArray out(data.shape());
  from_blocks(kept, layout, out.flat());
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const BenchOptions opt = parse_options(argc, argv);
  std::cout << "=== Figure 3: features vs information (ECR/TVE) and PSNR, "
               "DCT vs PCA (FLDSC) ===\n\n";

  const Dataset ds = make_dataset("FLDSC", opt.scale, opt.seed);
  const DpzAnalysis analysis(ds.data);
  const BlockLayout& layout = analysis.layout();

  // Information curves.
  std::vector<double> all_coeffs(analysis.dct_blocks().flat().begin(),
                                 analysis.dct_blocks().flat().end());
  const std::vector<double> ecr = ecr_curve(all_coeffs);
  const std::vector<double>& tve = analysis.tve_curve();

  auto curve_at_fraction = [](const std::vector<double>& curve, double f) {
    const std::size_t idx = std::min(
        curve.size() - 1,
        static_cast<std::size_t>(f * static_cast<double>(curve.size())));
    return curve[idx];
  };

  TablePrinter info({"features kept", "DCT cumulative ECR",
                     "PCA cumulative TVE"});
  for (const double f : {0.001, 0.005, 0.01, 0.02, 0.05, 0.10, 0.20, 0.50}) {
    info.add_row({fixed(100.0 * f, 1) + "%",
                  fixed(100.0 * curve_at_fraction(ecr, f), 3) + "%",
                  fixed(100.0 * curve_at_fraction(tve, f), 3) + "%"});
  }
  info.print();
  std::cout << "(paper: ~1% of features already preserve > 90% in both "
               "metrics)\n\n";

  // PSNR curves: DCT top-k per block vs PCA top-k components.
  TablePrinter psnr({"features kept", "DCT PSNR (dB)", "PCA PSNR (dB)"});
  QuantizerConfig qcfg;  // quantization off-path: exact scores here
  for (const double f : {0.01, 0.05, 0.10, 0.20, 0.35, 0.50}) {
    const FloatArray dct_rec =
        dct_topk_reconstruct(ds.data, layout, analysis.dct_blocks(), f);
    const double dct_psnr =
        compute_error_stats(ds.data.flat(), dct_rec.flat()).psnr_db;

    const auto k = std::max<std::size_t>(
        1, static_cast<std::size_t>(f * static_cast<double>(layout.m)));
    const FloatArray pca_rec = analysis.reconstruct_exact(k);
    const double pca_psnr =
        compute_error_stats(ds.data.flat(), pca_rec.flat()).psnr_db;

    psnr.add_row({fixed(100.0 * f, 0) + "%", fixed(dct_psnr, 2),
                  fixed(pca_psnr, 2)});
  }
  psnr.print();
  std::cout << "(paper: PCA reaches matching PSNR with fewer features "
               "than DCT)\n";
  maybe_write_csv(opt, "fig03_feature_curves", psnr);
  return 0;
}
