// Substrate micro-benchmarks: covariance, dense vs truncated symmetric
// eigendecomposition (the sampling strategy's O(M^3) -> O(M^2 k) claim),
// and PCA transform throughput.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "linalg/eigen_sym.h"
#include "linalg/pca.h"
#include "linalg/subspace_iteration.h"
#include "simd/simd.h"
#include "util/rng.h"

namespace {

using namespace dpz;

Matrix random_data(std::size_t m, std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  Matrix x(m, n);
  for (double& v : x.flat()) v = rng.normal();
  return x;
}

Matrix random_spd(std::size_t m, std::uint64_t seed) {
  const Matrix x = random_data(m, 2 * m, seed);
  return covariance(x);
}

void BM_Covariance(benchmark::State& state) {
  const auto m = static_cast<std::size_t>(state.range(0));
  const Matrix x = random_data(m, 2 * m, 1);
  for (auto _ : state) {
    const Matrix cov = covariance(x);
    benchmark::DoNotOptimize(cov.flat().data());
  }
}
BENCHMARK(BM_Covariance)->Arg(128)->Arg(256);

void BM_EigenDense(benchmark::State& state) {
  const auto m = static_cast<std::size_t>(state.range(0));
  const Matrix a = random_spd(m, 2);
  for (auto _ : state) {
    const SymmetricEigen eig = eigen_sym(a);
    benchmark::DoNotOptimize(eig.values.data());
  }
}
BENCHMARK(BM_EigenDense)->Arg(128)->Arg(256)->Arg(512);

void BM_EigenTopK(benchmark::State& state) {
  const auto m = static_cast<std::size_t>(state.range(0));
  const auto k = static_cast<std::size_t>(state.range(1));
  const Matrix a = random_spd(m, 3);
  for (auto _ : state) {
    const SymmetricEigen eig = eigen_sym_topk(a, k);
    benchmark::DoNotOptimize(eig.values.data());
  }
}
BENCHMARK(BM_EigenTopK)->Args({256, 8})->Args({512, 8})->Args({512, 32});

void BM_PcaTransform(benchmark::State& state) {
  const auto m = static_cast<std::size_t>(state.range(0));
  const Matrix x = random_data(m, 4 * m, 4);
  const PcaModel model = fit_pca(x);
  const std::size_t k = m / 8;
  for (auto _ : state) {
    const Matrix scores = model.transform(x, k);
    benchmark::DoNotOptimize(scores.flat().data());
  }
}
BENCHMARK(BM_PcaTransform)->Arg(256);

// ---- per-kernel, per-ISA rows ------------------------------------------
// One row per (kernel, ISA) so a dispatch regression shows up as a
// specific slow row rather than a diffuse pipeline slowdown. ISAs the
// host cannot execute are skipped, not failed, so the same binary
// reports sensibly everywhere.

bool isa_ready(benchmark::State& state, simd::Isa isa) {
  const std::vector<simd::Isa> avail = simd::available_isas();
  if (std::find(avail.begin(), avail.end(), isa) != avail.end())
    return true;
  state.SkipWithError("ISA unavailable on this host");
  return false;
}

void BM_KernelDot(benchmark::State& state) {
  const auto isa = static_cast<simd::Isa>(state.range(0));
  if (!isa_ready(state, isa)) return;
  const std::size_t n = 4096;
  std::vector<double> x(n), y(n);
  Rng rng(11);
  for (double& v : x) v = rng.normal();
  for (double& v : y) v = rng.normal();
  const simd::KernelTable& ops = simd::kernel_table(isa);
  for (auto _ : state) {
    double d = ops.dot(x.data(), y.data(), n);
    benchmark::DoNotOptimize(d);
  }
  state.SetLabel(simd::isa_name(isa));
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(2 * n * sizeof(double)));
}
BENCHMARK(BM_KernelDot)
    ->Arg(static_cast<int>(simd::Isa::kScalar))
    ->Arg(static_cast<int>(simd::Isa::kAvx2))
    ->Arg(static_cast<int>(simd::Isa::kNeon));

void BM_KernelAxpy(benchmark::State& state) {
  const auto isa = static_cast<simd::Isa>(state.range(0));
  if (!isa_ready(state, isa)) return;
  const std::size_t n = 4096;
  std::vector<double> x(n), y(n, 0.0);
  Rng rng(13);
  for (double& v : x) v = rng.normal();
  const simd::KernelTable& ops = simd::kernel_table(isa);
  for (auto _ : state) {
    ops.axpy(1.0009765625, x.data(), y.data(), n);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetLabel(simd::isa_name(isa));
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(3 * n * sizeof(double)));
}
BENCHMARK(BM_KernelAxpy)
    ->Arg(static_cast<int>(simd::Isa::kScalar))
    ->Arg(static_cast<int>(simd::Isa::kAvx2))
    ->Arg(static_cast<int>(simd::Isa::kNeon));

void BM_KernelAccumCentered(benchmark::State& state) {
  const auto isa = static_cast<simd::Isa>(state.range(0));
  if (!isa_ready(state, isa)) return;
  const std::size_t n = 4096;
  std::vector<double> x(n), out(n, 0.0);
  Rng rng(17);
  for (double& v : x) v = rng.normal();
  const simd::KernelTable& ops = simd::kernel_table(isa);
  for (auto _ : state) {
    ops.accum_centered(0.75, x.data(), 0.125, out.data(), n);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetLabel(simd::isa_name(isa));
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(3 * n * sizeof(double)));
}
BENCHMARK(BM_KernelAccumCentered)
    ->Arg(static_cast<int>(simd::Isa::kScalar))
    ->Arg(static_cast<int>(simd::Isa::kAvx2))
    ->Arg(static_cast<int>(simd::Isa::kNeon));

void BM_JacobiReference(benchmark::State& state) {
  const auto m = static_cast<std::size_t>(state.range(0));
  const Matrix a = random_spd(m, 5);
  for (auto _ : state) {
    const SymmetricEigen eig = eigen_sym_jacobi(a);
    benchmark::DoNotOptimize(eig.values.data());
  }
}
BENCHMARK(BM_JacobiReference)->Arg(64);

}  // namespace

BENCHMARK_MAIN();
