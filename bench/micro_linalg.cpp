// Substrate micro-benchmarks: covariance, dense vs truncated symmetric
// eigendecomposition (the sampling strategy's O(M^3) -> O(M^2 k) claim),
// and PCA transform throughput.
#include <benchmark/benchmark.h>

#include "linalg/eigen_sym.h"
#include "linalg/pca.h"
#include "linalg/subspace_iteration.h"
#include "util/rng.h"

namespace {

using namespace dpz;

Matrix random_data(std::size_t m, std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  Matrix x(m, n);
  for (double& v : x.flat()) v = rng.normal();
  return x;
}

Matrix random_spd(std::size_t m, std::uint64_t seed) {
  const Matrix x = random_data(m, 2 * m, seed);
  return covariance(x);
}

void BM_Covariance(benchmark::State& state) {
  const auto m = static_cast<std::size_t>(state.range(0));
  const Matrix x = random_data(m, 2 * m, 1);
  for (auto _ : state) {
    const Matrix cov = covariance(x);
    benchmark::DoNotOptimize(cov.flat().data());
  }
}
BENCHMARK(BM_Covariance)->Arg(128)->Arg(256);

void BM_EigenDense(benchmark::State& state) {
  const auto m = static_cast<std::size_t>(state.range(0));
  const Matrix a = random_spd(m, 2);
  for (auto _ : state) {
    const SymmetricEigen eig = eigen_sym(a);
    benchmark::DoNotOptimize(eig.values.data());
  }
}
BENCHMARK(BM_EigenDense)->Arg(128)->Arg(256)->Arg(512);

void BM_EigenTopK(benchmark::State& state) {
  const auto m = static_cast<std::size_t>(state.range(0));
  const auto k = static_cast<std::size_t>(state.range(1));
  const Matrix a = random_spd(m, 3);
  for (auto _ : state) {
    const SymmetricEigen eig = eigen_sym_topk(a, k);
    benchmark::DoNotOptimize(eig.values.data());
  }
}
BENCHMARK(BM_EigenTopK)->Args({256, 8})->Args({512, 8})->Args({512, 32});

void BM_PcaTransform(benchmark::State& state) {
  const auto m = static_cast<std::size_t>(state.range(0));
  const Matrix x = random_data(m, 4 * m, 4);
  const PcaModel model = fit_pca(x);
  const std::size_t k = m / 8;
  for (auto _ : state) {
    const Matrix scores = model.transform(x, k);
    benchmark::DoNotOptimize(scores.flat().data());
  }
}
BENCHMARK(BM_PcaTransform)->Arg(256);

void BM_JacobiReference(benchmark::State& state) {
  const auto m = static_cast<std::size_t>(state.range(0));
  const Matrix a = random_spd(m, 5);
  for (auto _ : state) {
    const SymmetricEigen eig = eigen_sym_jacobi(a);
    benchmark::DoNotOptimize(eig.values.data());
  }
}
BENCHMARK(BM_JacobiReference)->Arg(64);

}  // namespace

BENCHMARK_MAIN();
