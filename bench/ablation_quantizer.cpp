// Ablation of the Stage-3 quantizer calibration: the score-normalization
// sigma scale (DESIGN.md SS3) controls how much of the dominant
// component's distribution the bounded bin range covers.
//
//  * small scale  -> narrow coverage: many escape outliers (stored as
//    f32), stage-3 CR collapses toward 1, but in-band error shrinks;
//  * large scale  -> wide coverage: no outliers, stage-3 CR saturates at
//    code-width ratio, but the absolute quantization step grows and PSNR
//    drops.
// The default (8 sigma) sits at the paper-shaped operating point: DPZ-l
// stage-3 CR in the 2-4X band with DPZ-s pinned at ~2X.
#include <iostream>

#include "bench_common.h"
#include "core/analysis.h"
#include "metrics/metrics.h"

namespace {

using namespace dpz;
using namespace dpz::bench;

}  // namespace

int main(int argc, char** argv) {
  const BenchOptions opt = parse_options(argc, argv);
  std::cout << "=== Ablation: score-normalization sigma scale ===\n\n";

  const Dataset ds = make_dataset("PHIS", opt.scale, opt.seed);
  const DpzAnalysis analysis(ds.data);
  const std::size_t k = analysis.k_for_tve(0.99999);
  std::cout << "PHIS, k = " << k << " at five-nine TVE\n\n";

  TablePrinter table({"scheme", "sigma scale", "outliers", "CR stage3",
                      "end-to-end CR", "PSNR (dB)"});

  for (const bool strict : {false, true}) {
    QuantizerConfig qcfg;
    qcfg.error_bound = strict ? 1e-4 : 1e-3;
    qcfg.wide_codes = strict;
    for (const double sigma : {1.0, 2.0, 4.0, 8.0, 16.0, 32.0}) {
      const auto ev = analysis.evaluate(k, qcfg, 6, sigma);
      table.add_row(
          {strict ? "DPZ-s" : "DPZ-l", fixed(sigma, 0),
           std::to_string(ev.accounting.outlier_count),
           fixed(ev.accounting.cr_stage3(), 3),
           fixed(compression_ratio(ds.data.size() * 4,
                                   ev.accounting.archive_bytes),
                 2),
           fixed(ev.stage3_error.psnr_db, 2)});
    }
  }

  table.print();
  std::cout << "(the default sigma scale of 8 reproduces Table III's "
               "stage-3 band: DPZ-l in 2-4X, DPZ-s ~2X)\n";
  maybe_write_csv(opt, "ablation_quantizer", table);
  return 0;
}
