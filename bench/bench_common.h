// Shared plumbing for the figure/table harnesses: flag parsing, dataset
// scaling, CSV emission, and the TVE ladder the paper sweeps.
//
// Every harness runs with no arguments at a laptop-friendly default scale
// and accepts:
//   --scale=<f>   dataset scale factor (1.0 = paper-size grids)
//   --seed=<n>    dataset seed
//   --csv         also write bench_results/<name>.csv
//   --outdir=<d>  where CSV/PGM artifacts go (default bench_results)
//
// bench_regression additionally accepts:
//   --baseline=<p>        committed baseline JSON to gate against
//                         (default bench_results/BENCH_baseline.json;
//                         a missing default baseline skips the gate)
//   --max-regression=<f>  allowed fractional throughput drop before the
//                         gate fails (default 0.25; the environment
//                         variable DPZ_BENCH_MAX_REGRESSION overrides
//                         the default, the flag overrides both)
//   --repeats=<n>         timing repetitions per cell; the minimum wall
//                         time wins (default 3 — single-shot timings on
//                         a shared runner swing more than the gate's
//                         threshold)
#pragma once

#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "data/datasets.h"
#include "util/cli.h"
#include "util/format.h"

namespace dpz::bench {

struct BenchOptions {
  double scale = 0.2;
  std::uint64_t seed = 2021;
  bool csv = false;
  std::string outdir = "bench_results";
  std::string baseline = "bench_results/BENCH_baseline.json";
  bool baseline_explicit = false;
  double max_regression = 0.25;
  int repeats = 3;
  /// Rewrite the baseline file from this run instead of gating against
  /// it (bench_regression only; see bench/README.md).
  bool rebaseline = false;
};

inline BenchOptions parse_options(int argc, const char* const* argv) {
  const CliArgs args(argc, argv,
                     {"scale", "seed", "csv", "outdir", "baseline",
                      "max-regression", "repeats", "rebaseline", "help"});
  if (args.has("help")) {
    std::cout << "flags: --scale=<f> --seed=<n> --csv --outdir=<dir> "
                 "--baseline=<json> --max-regression=<f> --repeats=<n> "
                 "--rebaseline\n";
    std::exit(0);
  }
  BenchOptions opt;
  opt.scale = args.get_double("scale", opt.scale);
  opt.seed = static_cast<std::uint64_t>(args.get_int("seed", 2021));
  opt.csv = args.get_bool("csv", false);
  opt.outdir = args.get_string("outdir", opt.outdir);
  opt.baseline = args.get_string("baseline", opt.baseline);
  opt.baseline_explicit = args.has("baseline");
  if (const char* env = std::getenv("DPZ_BENCH_MAX_REGRESSION"))
    opt.max_regression = std::atof(env);
  opt.max_regression = args.get_double("max-regression", opt.max_regression);
  opt.repeats = static_cast<int>(
      std::max<std::int64_t>(1, args.get_int("repeats", opt.repeats)));
  opt.rebaseline = args.get_bool("rebaseline", false);
  return opt;
}

/// Writes the table as CSV under opt.outdir when --csv was passed.
inline void maybe_write_csv(const BenchOptions& opt, const std::string& name,
                            const TablePrinter& table) {
  if (!opt.csv) return;
  std::filesystem::create_directories(opt.outdir);
  const std::string path = opt.outdir + "/" + name + ".csv";
  std::ofstream out(path);
  table.write_csv(out);
  std::cout << "wrote " << path << "\n";
}

/// Ensures the artifact directory exists and returns `outdir/name`.
inline std::string artifact_path(const BenchOptions& opt,
                                 const std::string& name) {
  std::filesystem::create_directories(opt.outdir);
  return opt.outdir + "/" + name;
}

/// The paper's TVE ladder: "three-nine" ... "eight-nine" (SS IV-B2).
inline std::vector<double> tve_ladder() {
  return {0.999, 0.9999, 0.99999, 0.999999, 0.9999999, 0.99999999};
}

/// Subset of the ladder used by Tables III/IV (99.9 / 99.999 / 99.99999).
inline std::vector<double> tve_table_points() {
  return {0.999, 0.99999, 0.9999999};
}

inline std::string tve_label(double tve) {
  // 0.999 -> "99.9%", 0.99999 -> "99.999%", matching the paper's rows.
  std::string s = fixed(tve * 100.0, 7);
  while (!s.empty() && s.back() == '0') s.pop_back();
  if (!s.empty() && s.back() == '.') s.pop_back();
  return s + "%";
}

/// Table II's six datasets (space-limited subset of the nine).
inline std::vector<std::string> table_datasets() {
  return {"Isotropic", "Channel", "CLDHGH", "PHIS", "HACC-x", "HACC-vx"};
}

}  // namespace dpz::bench
