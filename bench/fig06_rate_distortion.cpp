// Figure 6: rate-distortion (PSNR vs bit-rate) of DPZ-l and DPZ-s — TVE
// swept "three-nine" to "eight-nine" — against the SZ-like baseline
// (relative error-bound sweep) and the ZFP-like baseline (fixed-precision
// sweep) on eight datasets (the paper omits CLDLOW as it mirrors CLDHGH).
//
// Shape to reproduce: DPZ wins at medium-to-high accuracy on the smooth
// 2-D/3-D datasets, DPZ-s stays steady into tight TVE while DPZ-l tops
// out, and HACC-vx resists DPZ (low VIF).
//
// Bit-rates for DPZ are computed from the full archive (basis included);
// the paper's own accounting ignores the basis, so our absolute bit-rates
// are higher — see EXPERIMENTS.md.
#include <algorithm>
#include <iostream>

#include "baselines/szlike.h"
#include "baselines/zfplike.h"
#include "bench_common.h"
#include "core/analysis.h"
#include "metrics/metrics.h"

namespace {

using namespace dpz;
using namespace dpz::bench;

}  // namespace

int main(int argc, char** argv) {
  const BenchOptions opt = parse_options(argc, argv);
  std::cout << "=== Figure 6: rate-distortion comparison ===\n";
  std::cout << "scale " << opt.scale
            << " (use --scale=1 for paper-size grids)\n\n";

  TablePrinter table(
      {"dataset", "compressor", "setting", "bit-rate", "PSNR (dB)", "CR"});

  std::vector<std::string> names = dataset_names();
  names.erase(std::remove(names.begin(), names.end(), "CLDLOW"),
              names.end());

  for (const std::string& name : names) {
    const Dataset ds = make_dataset(name, opt.scale, opt.seed);
    const std::uint64_t original_bytes = ds.data.size() * sizeof(float);

    // DPZ: one cached analysis, both schemes, full TVE ladder.
    const DpzAnalysis analysis(ds.data);
    for (const bool strict : {false, true}) {
      QuantizerConfig qcfg;
      qcfg.error_bound = strict ? 1e-4 : 1e-3;
      qcfg.wide_codes = strict;
      for (const double tve : tve_ladder()) {
        const std::size_t k = analysis.k_for_tve(tve);
        const auto ev = analysis.evaluate(k, qcfg);
        const double cr = compression_ratio(original_bytes,
                                            ev.accounting.archive_bytes);
        table.add_row({name, strict ? "DPZ-s" : "DPZ-l", tve_label(tve),
                       fixed(bit_rate_f32(cr), 3),
                       fixed(ev.stage3_error.psnr_db, 2), fixed(cr, 2)});
      }
    }

    // SZ-like: value-range-relative error bound sweep.
    for (const double rel : {1e-2, 1e-3, 1e-4, 1e-5}) {
      SzLikeConfig config;
      config.relative_bound = rel;
      const auto archive = szlike_compress(ds.data, config);
      const FloatArray back = szlike_decompress(archive);
      const double cr = compression_ratio(original_bytes, archive.size());
      table.add_row({name, "SZ-like", "rel " + scientific(rel, 0),
                     fixed(bit_rate_f32(cr), 3),
                     fixed(compute_error_stats(ds.data.flat(), back.flat())
                               .psnr_db,
                           2),
                     fixed(cr, 2)});
    }

    // ZFP-like: fixed-precision sweep.
    for (const unsigned precision : {8U, 12U, 16U, 20U, 24U}) {
      ZfpLikeConfig config;
      config.precision = precision;
      const auto archive = zfplike_compress(ds.data, config);
      const FloatArray back = zfplike_decompress(archive);
      const double cr = compression_ratio(original_bytes, archive.size());
      table.add_row({name, "ZFP-like", "prec " + std::to_string(precision),
                     fixed(bit_rate_f32(cr), 3),
                     fixed(compute_error_stats(ds.data.flat(), back.flat())
                               .psnr_db,
                           2),
                     fixed(cr, 2)});
    }
    std::cout << "finished " << name << "\n";
  }

  std::cout << "\n";
  table.print();
  maybe_write_csv(opt, "fig06_rate_distortion", table);
  return 0;
}
