// Benchmark-regression harness for the parallel pipeline: sweeps the
// threads knob over representative datasets/pipelines and emits
// BENCH_pipeline.json (machine-readable; CI uploads it as an artifact so
// throughput can be tracked across commits).
//
// For every (dataset, pipeline, threads) cell it records compress and
// decompress wall time, throughput in MB/s, the per-stage seconds from
// the ScopedStage timers inside the compressor, CR, PSNR, and an FNV-1a
// hash of the archive bytes. The hash doubles as a determinism check:
// every thread count must produce byte-identical archives and decodes,
// and the harness exits non-zero when any cell disagrees with the
// 1-thread reference — a regression gate, not just a report.
#include <algorithm>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <map>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "core/chunked.h"
#include "core/dpz.h"
#include "metrics/metrics.h"
#include "util/timer.h"

namespace {

using namespace dpz;
using namespace dpz::bench;

// FNV-1a over a byte span: tiny, dependency-free, and stable across
// platforms — exactly what a cross-commit regression artifact needs.
std::uint64_t fnv1a(std::span<const std::uint8_t> bytes) {
  std::uint64_t h = 1469598103934665603ULL;
  for (const std::uint8_t b : bytes) {
    h ^= b;
    h *= 1099511628211ULL;
  }
  return h;
}

std::uint64_t fnv1a_f32(std::span<const float> values) {
  return fnv1a({reinterpret_cast<const std::uint8_t*>(values.data()),
                values.size() * sizeof(float)});
}

struct CellResult {
  std::string dataset;
  std::string pipeline;
  unsigned threads = 0;
  double compress_s = 0.0;
  double decompress_s = 0.0;
  double compress_mbs = 0.0;
  double decompress_mbs = 0.0;
  double cr = 0.0;
  double psnr_db = 0.0;
  std::uint64_t archive_bytes = 0;
  std::uint64_t archive_hash = 0;
  std::uint64_t decode_hash = 0;
  std::map<std::string, double> stage_seconds;
};

CellResult run_cell(const Dataset& ds, const std::string& pipeline,
                    unsigned threads) {
  CellResult r;
  r.dataset = ds.name;
  r.pipeline = pipeline;
  r.threads = threads;
  const std::uint64_t original_bytes = ds.data.size() * sizeof(float);
  const double mb = static_cast<double>(original_bytes) / (1024.0 * 1024.0);

  std::vector<std::uint8_t> archive;
  FloatArray back;
  if (pipeline == "chunked") {
    ChunkedConfig config;
    config.dpz = DpzConfig::strict();
    // Several frames even at bench scale, so the fan-out has work.
    config.chunk_values =
        std::max<std::size_t>(ds.data.size() / 8, std::size_t{1} << 12);
    config.threads = threads;
    Timer timer;
    archive = chunked_compress(ds.data, config);
    r.compress_s = timer.reset();
    back = chunked_decompress(archive, threads);
    r.decompress_s = timer.elapsed();
  } else {
    DpzConfig config =
        pipeline == "DPZ-l" ? DpzConfig::loose() : DpzConfig::strict();
    config.threads = threads;
    DpzStats stats;
    Timer timer;
    archive = dpz_compress(ds.data, config, &stats);
    r.compress_s = timer.reset();
    back = dpz_decompress(archive, 0, threads);
    r.decompress_s = timer.elapsed();
    r.stage_seconds = stats.timers.buckets();
  }

  r.compress_mbs = mb / std::max(r.compress_s, 1e-9);
  r.decompress_mbs = mb / std::max(r.decompress_s, 1e-9);
  r.cr = compression_ratio(original_bytes, archive.size());
  r.psnr_db = compute_error_stats(ds.data.flat(), back.flat()).psnr_db;
  r.archive_bytes = archive.size();
  r.archive_hash = fnv1a(archive);
  r.decode_hash = fnv1a_f32(back.flat());
  return r;
}

void write_json(std::ostream& out, const std::vector<CellResult>& cells,
                unsigned hw, bool deterministic) {
  out << "{\n";
  out << "  \"bench\": \"pipeline\",\n";
  out << "  \"hardware_concurrency\": " << hw << ",\n";
  out << "  \"deterministic\": " << (deterministic ? "true" : "false")
      << ",\n";
  out << "  \"results\": [\n";
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const CellResult& r = cells[i];
    // Speedup relative to the 1-thread cell of the same combo.
    double speedup = 0.0;
    for (const CellResult& ref : cells)
      if (ref.dataset == r.dataset && ref.pipeline == r.pipeline &&
          ref.threads == 1)
        speedup = ref.compress_s / std::max(r.compress_s, 1e-9);
    out << "    {\n"
        << "      \"dataset\": \"" << r.dataset << "\",\n"
        << "      \"pipeline\": \"" << r.pipeline << "\",\n"
        << "      \"threads\": " << r.threads << ",\n"
        << "      \"compress_s\": " << scientific(r.compress_s, 6) << ",\n"
        << "      \"decompress_s\": " << scientific(r.decompress_s, 6)
        << ",\n"
        << "      \"compress_mb_s\": " << fixed(r.compress_mbs, 3) << ",\n"
        << "      \"decompress_mb_s\": " << fixed(r.decompress_mbs, 3)
        << ",\n"
        << "      \"speedup_vs_1t\": " << fixed(speedup, 3) << ",\n"
        << "      \"cr\": " << fixed(r.cr, 4) << ",\n"
        << "      \"psnr_db\": " << fixed(r.psnr_db, 3) << ",\n"
        << "      \"archive_bytes\": " << r.archive_bytes << ",\n"
        << "      \"archive_fnv1a\": \"" << r.archive_hash << "\",\n"
        << "      \"decode_fnv1a\": \"" << r.decode_hash << "\",\n"
        << "      \"stages\": {";
    std::size_t j = 0;
    for (const auto& [stage, seconds] : r.stage_seconds)
      out << (j++ ? ", " : "") << "\"" << stage
          << "\": " << scientific(seconds, 6);
    out << "}\n    }" << (i + 1 < cells.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
}

}  // namespace

int main(int argc, char** argv) {
  const BenchOptions opt = parse_options(argc, argv);
  std::cout << "=== Pipeline regression bench: threads sweep ===\n\n";

  const unsigned hw = std::max(1U, std::thread::hardware_concurrency());
  std::vector<unsigned> sweep = {1, 2, std::max(4U, hw)};
  std::sort(sweep.begin(), sweep.end());
  sweep.erase(std::unique(sweep.begin(), sweep.end()), sweep.end());

  // One dataset per rank: 2-D climate, 1-D cosmology, 3-D turbulence.
  const std::vector<std::string> names = {"CLDHGH", "HACC-x", "Isotropic"};
  const std::vector<std::string> pipelines = {"DPZ-l", "DPZ-s", "chunked"};

  std::vector<CellResult> cells;
  bool deterministic = true;
  TablePrinter table({"dataset", "pipeline", "threads", "comp s",
                      "comp MB/s", "speedup", "CR", "PSNR dB", "det"});
  for (const std::string& name : names) {
    const Dataset ds = make_dataset(name, opt.scale, opt.seed);
    for (const std::string& pipeline : pipelines) {
      std::uint64_t ref_archive = 0;
      std::uint64_t ref_decode = 0;
      double ref_seconds = 0.0;
      for (const unsigned threads : sweep) {
        const CellResult r = run_cell(ds, pipeline, threads);
        bool same = true;
        if (threads == sweep.front()) {
          ref_archive = r.archive_hash;
          ref_decode = r.decode_hash;
          ref_seconds = r.compress_s;
        } else {
          same = r.archive_hash == ref_archive &&
                 r.decode_hash == ref_decode;
          deterministic = deterministic && same;
        }
        table.add_row({r.dataset, r.pipeline, std::to_string(r.threads),
                       fixed(r.compress_s, 3), fixed(r.compress_mbs, 1),
                       fixed(ref_seconds / std::max(r.compress_s, 1e-9), 2),
                       fixed(r.cr, 2), fixed(r.psnr_db, 2),
                       same ? "ok" : "MISMATCH"});
        cells.push_back(r);
      }
    }
  }

  table.print();
  std::cout << "\nhardware threads: " << hw << "\n";
  if (!deterministic)
    std::cout << "DETERMINISM FAILURE: archives differ across thread "
                 "counts\n";

  const std::string path = artifact_path(opt, "BENCH_pipeline.json");
  std::ofstream json(path);
  write_json(json, cells, hw, deterministic);
  std::cout << "wrote " << path << "\n";
  return deterministic ? 0 : 1;
}
