// Benchmark-regression harness for the parallel pipeline: sweeps the
// threads knob over representative datasets/pipelines and emits
// BENCH_pipeline.json (machine-readable; CI uploads it as an artifact so
// throughput can be tracked across commits).
//
// For every (dataset, pipeline, threads) cell it records compress and
// decompress wall time, throughput in MB/s, the per-stage seconds from
// the compressor's obs::StageAccumulator, CR, PSNR, and an FNV-1a hash
// of the archive bytes. The hash doubles as a determinism check: every
// thread count must produce byte-identical archives and decodes, and
// the harness exits non-zero when any cell disagrees with the 1-thread
// reference — a regression gate, not just a report.
//
// The whole sweep runs with telemetry enabled: the artifact embeds a
// metrics-registry snapshot, a Perfetto-loadable BENCH_trace.json rides
// along, and — when a baseline JSON exists — per-cell and per-stage
// throughput is gated against it (see bench_common.h for the knobs).
#include <algorithm>
#include <cmath>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <map>
#include <span>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "core/chunked.h"
#include "core/dpz.h"
#include "metrics/metrics.h"
#include "obs/metrics.h"
#include "obs/telemetry.h"
#include "obs/trace.h"
#include "util/json_mini.h"
#include "util/timer.h"

namespace {

using namespace dpz;
using namespace dpz::bench;

// FNV-1a over a byte span: tiny, dependency-free, and stable across
// platforms — exactly what a cross-commit regression artifact needs.
std::uint64_t fnv1a(std::span<const std::uint8_t> bytes) {
  std::uint64_t h = 1469598103934665603ULL;
  for (const std::uint8_t b : bytes) {
    h ^= b;
    h *= 1099511628211ULL;
  }
  return h;
}

std::uint64_t fnv1a_f32(std::span<const float> values) {
  return fnv1a({reinterpret_cast<const std::uint8_t*>(values.data()),
                values.size() * sizeof(float)});
}

struct CellResult {
  std::string dataset;
  std::string pipeline;
  unsigned threads = 0;
  double mb = 0.0;
  double compress_s = 0.0;
  double decompress_s = 0.0;
  double compress_mbs = 0.0;
  double decompress_mbs = 0.0;
  double cr = 0.0;
  double psnr_db = 0.0;
  std::uint64_t archive_bytes = 0;
  std::uint64_t archive_hash = 0;
  std::uint64_t decode_hash = 0;
  std::map<std::string, double> stage_seconds;
};

CellResult run_cell(const Dataset& ds, const std::string& pipeline,
                    unsigned threads, int repeats) {
  CellResult r;
  r.dataset = ds.name;
  r.pipeline = pipeline;
  r.threads = threads;
  const std::uint64_t original_bytes = ds.data.size() * sizeof(float);
  const double mb = static_cast<double>(original_bytes) / (1024.0 * 1024.0);
  r.mb = mb;

  // Each repetition produces byte-identical output (determinism is the
  // whole point of this harness), so only wall time varies: the minimum
  // wins, which is the stable estimator the baseline gate needs —
  // single-shot timings on a shared runner swing more than the gate's
  // threshold.
  std::vector<std::uint8_t> archive;
  FloatArray back;
  for (int rep = 0; rep < repeats; ++rep) {
    double compress_s = 0.0;
    double decompress_s = 0.0;
    std::map<std::string, double> stage_seconds;
    if (pipeline == "chunked") {
      ChunkedConfig config;
      config.dpz = DpzConfig::strict();
      // Several frames even at bench scale, so the fan-out has work.
      config.chunk_values =
          std::max<std::size_t>(ds.data.size() / 8, std::size_t{1} << 12);
      config.threads = threads;
      Timer timer;
      archive = chunked_compress(ds.data, config);
      compress_s = timer.reset();
      back = chunked_decompress(archive, threads);
      decompress_s = timer.elapsed();
    } else {
      DpzConfig config =
          pipeline == "DPZ-l" ? DpzConfig::loose() : DpzConfig::strict();
      config.threads = threads;
      DpzStats stats;
      Timer timer;
      archive = dpz_compress(ds.data, config, &stats);
      compress_s = timer.reset();
      back = dpz_decompress(archive, 0, threads);
      decompress_s = timer.elapsed();
      stage_seconds = stats.timers.buckets();
    }
    if (rep == 0 || compress_s < r.compress_s) {
      r.compress_s = compress_s;
      r.stage_seconds = std::move(stage_seconds);
    }
    if (rep == 0 || decompress_s < r.decompress_s)
      r.decompress_s = decompress_s;
  }

  r.compress_mbs = mb / std::max(r.compress_s, 1e-9);
  r.decompress_mbs = mb / std::max(r.decompress_s, 1e-9);
  r.cr = compression_ratio(original_bytes, archive.size());
  r.psnr_db = compute_error_stats(ds.data.flat(), back.flat()).psnr_db;
  r.archive_bytes = archive.size();
  r.archive_hash = fnv1a(archive);
  r.decode_hash = fnv1a_f32(back.flat());
  return r;
}

void write_json(std::ostream& out, const std::vector<CellResult>& cells,
                const BenchOptions& opt, unsigned hw, double calib,
                bool deterministic, const std::string& metrics_json) {
  out << "{\n";
  out << "  \"bench\": \"pipeline\",\n";
  out << "  \"scale\": " << fixed(opt.scale, 6) << ",\n";
  out << "  \"seed\": " << opt.seed << ",\n";
  out << "  \"calibration_mb_s\": " << fixed(calib, 3) << ",\n";
  out << "  \"hardware_concurrency\": " << hw << ",\n";
  out << "  \"deterministic\": " << (deterministic ? "true" : "false")
      << ",\n";
  out << "  \"metrics\": " << metrics_json << ",\n";
  out << "  \"results\": [\n";
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const CellResult& r = cells[i];
    // Speedup relative to the 1-thread cell of the same combo.
    double speedup = 0.0;
    for (const CellResult& ref : cells)
      if (ref.dataset == r.dataset && ref.pipeline == r.pipeline &&
          ref.threads == 1)
        speedup = ref.compress_s / std::max(r.compress_s, 1e-9);
    out << "    {\n"
        << "      \"dataset\": \"" << r.dataset << "\",\n"
        << "      \"pipeline\": \"" << r.pipeline << "\",\n"
        << "      \"threads\": " << r.threads << ",\n"
        << "      \"compress_s\": " << scientific(r.compress_s, 6) << ",\n"
        << "      \"decompress_s\": " << scientific(r.decompress_s, 6)
        << ",\n"
        << "      \"compress_mb_s\": " << fixed(r.compress_mbs, 3) << ",\n"
        << "      \"decompress_mb_s\": " << fixed(r.decompress_mbs, 3)
        << ",\n"
        << "      \"speedup_vs_1t\": " << fixed(speedup, 3) << ",\n"
        << "      \"cr\": " << fixed(r.cr, 4) << ",\n"
        << "      \"psnr_db\": " << fixed(r.psnr_db, 3) << ",\n"
        << "      \"archive_bytes\": " << r.archive_bytes << ",\n"
        << "      \"archive_fnv1a\": \"" << r.archive_hash << "\",\n"
        << "      \"decode_fnv1a\": \"" << r.decode_hash << "\",\n"
        << "      \"stages\": {";
    std::size_t j = 0;
    for (const auto& [stage, seconds] : r.stage_seconds)
      out << (j++ ? ", " : "") << "\"" << stage
          << "\": " << scientific(seconds, 6);
    out << "}\n    }" << (i + 1 < cells.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
}

// Measurements whose baseline duration is shorter than this are below
// the timing noise floor (sub-10ms cells swing tens of percent run to
// run) and are not gated — the gate would otherwise be flaky by design.
constexpr double kMinGateSeconds = 0.01;

// Deterministic pure-CPU calibration workload: FNV-1a over a fixed
// pseudorandom buffer, minimum of five runs. Its throughput measures
// the machine's effective speed *right now*, so the gate can compare a
// run against a baseline recorded on a differently loaded (or
// thermally throttled) host: both sides are normalized by their own
// calibration before ratios are taken.
double calibration_mb_s() {
  std::vector<std::uint8_t> buf(std::size_t{32} << 20);
  std::uint64_t x = 0x9E3779B97F4A7C15ULL;  // xorshift64 fill
  for (std::uint8_t& b : buf) {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    b = static_cast<std::uint8_t>(x);
  }
  double best = 1e100;
  std::uint64_t sink = 0;
  for (int rep = 0; rep < 5; ++rep) {
    Timer timer;
    sink ^= fnv1a(buf);
    best = std::min(best, timer.elapsed());
  }
  // Keep the hash alive so the loop cannot be elided.
  if (sink == 0x123456789ABCDEFULL) std::cout << "";
  return 32.0 / std::max(best, 1e-9);
}

// Gates this run's throughput against a baseline BENCH_pipeline.json.
//
// Per-cell timings on shared runners swing more than any usable
// threshold, so the gate aggregates: for compress, decompress, and each
// pipeline stage separately, it takes the machine-normalized throughput
// ratio (current / baseline) of every matched (dataset, pipeline,
// threads) cell and fails when the geometric mean drops below
// 1 - max_reg. A real regression in one stage slows that stage in every
// cell, so the mean drops with it; scheduler noise in single cells
// averages out. Cells absent from the baseline pass (the baseline may
// predate them); a baseline recorded at a different --scale skips the
// gate, since fixed-overhead effects would make the comparison
// meaningless.
std::vector<std::string> gate_against_baseline(
    const json::Value& doc, const std::vector<CellResult>& cells,
    double scale, double calib, double max_reg) {
  std::vector<std::string> failures;
  auto number_of = [](const json::Value& obj, const char* key) {
    const json::Value* v = obj.find(key);
    return v != nullptr && v->is_number() ? v->number : 0.0;
  };
  auto string_of = [](const json::Value& obj, const char* key) {
    const json::Value* v = obj.find(key);
    return v != nullptr && v->is_string() ? v->text : std::string();
  };
  const json::Value* base_scale = doc.find("scale");
  if (base_scale != nullptr &&
      std::abs(base_scale->number - scale) > 1e-9) {
    std::cout << "baseline gate: skipped (baseline scale "
              << base_scale->number << " != run scale " << scale << ")\n";
    return failures;
  }
  const json::Value* results = doc.find("results");
  if (results == nullptr || !results->is_array()) {
    failures.push_back("baseline has no \"results\" array");
    return failures;
  }
  // Machine-speed normalization: >1 means this machine currently runs
  // faster than the baseline host did, so baseline numbers are scaled
  // up accordingly (and vice versa).
  double norm = 1.0;
  const double base_calib = number_of(doc, "calibration_mb_s");
  if (base_calib > 0.0 && calib > 0.0) norm = calib / base_calib;

  std::map<std::string, std::vector<double>> ratios;
  for (const CellResult& r : cells) {
    const json::Value* match = nullptr;
    for (const json::Value& b : results->items)
      if (string_of(b, "dataset") == r.dataset &&
          string_of(b, "pipeline") == r.pipeline &&
          static_cast<unsigned>(number_of(b, "threads")) == r.threads)
        match = &b;
    if (match == nullptr) continue;
    auto add_ratio = [&](const std::string& what, double base_mbs,
                         double cur_mbs) {
      if (base_mbs > 0.0 && cur_mbs > 0.0)
        ratios[what].push_back(cur_mbs / (base_mbs * norm));
    };
    if (number_of(*match, "compress_s") >= kMinGateSeconds)
      add_ratio("compress", number_of(*match, "compress_mb_s"),
                r.compress_mbs);
    if (number_of(*match, "decompress_s") >= kMinGateSeconds)
      add_ratio("decompress", number_of(*match, "decompress_mb_s"),
                r.decompress_mbs);
    const json::Value* stages = match->find("stages");
    if (stages == nullptr || !stages->is_object()) continue;
    for (const auto& [stage, secs] : stages->members) {
      if (!secs.is_number() || secs.number < kMinGateSeconds) continue;
      const auto it = r.stage_seconds.find(stage);
      if (it == r.stage_seconds.end() || it->second <= 0.0) continue;
      add_ratio(stage, r.mb / secs.number, r.mb / it->second);
    }
  }
  for (const auto& [what, v] : ratios) {
    double log_sum = 0.0;
    for (const double x : v) log_sum += std::log(std::max(x, 1e-12));
    const double geomean = std::exp(log_sum / static_cast<double>(v.size()));
    if (geomean >= 1.0 - max_reg) continue;
    std::ostringstream msg;
    msg << what << ": mean throughput " << fixed(geomean, 3)
        << "x baseline across " << v.size()
        << " cells (machine-normalized x" << fixed(norm, 3)
        << "; allowed >= " << fixed(1.0 - max_reg, 3) << ")";
    failures.push_back(msg.str());
  }
  return failures;
}

}  // namespace

int main(int argc, char** argv) {
  const BenchOptions opt = parse_options(argc, argv);
  std::cout << "=== Pipeline regression bench: threads sweep ===\n\n";

  // The whole sweep runs with telemetry on: the JSON artifact embeds a
  // metrics snapshot and a Perfetto trace rides along. The per-cell
  // determinism hashes double as standing proof that tracing never
  // perturbs archive bytes.
  const dpz::obs::ScopedTelemetry telemetry(true);
  dpz::obs::MetricsRegistry::instance().reset();
  dpz::obs::TraceRecorder::instance().clear();

  const unsigned hw = std::max(1U, std::thread::hardware_concurrency());
  std::vector<unsigned> sweep = {1, 2, std::max(4U, hw)};
  std::sort(sweep.begin(), sweep.end());
  sweep.erase(std::unique(sweep.begin(), sweep.end()), sweep.end());

  // One dataset per rank: 2-D climate, 1-D cosmology, 3-D turbulence.
  const std::vector<std::string> names = {"CLDHGH", "HACC-x", "Isotropic"};
  const std::vector<std::string> pipelines = {"DPZ-l", "DPZ-s", "chunked"};

  std::vector<CellResult> cells;
  bool deterministic = true;
  TablePrinter table({"dataset", "pipeline", "threads", "comp s",
                      "comp MB/s", "speedup", "CR", "PSNR dB", "det"});
  for (const std::string& name : names) {
    const Dataset ds = make_dataset(name, opt.scale, opt.seed);
    for (const std::string& pipeline : pipelines) {
      std::uint64_t ref_archive = 0;
      std::uint64_t ref_decode = 0;
      double ref_seconds = 0.0;
      for (const unsigned threads : sweep) {
        const CellResult r = run_cell(ds, pipeline, threads, opt.repeats);
        bool same = true;
        if (threads == sweep.front()) {
          ref_archive = r.archive_hash;
          ref_decode = r.decode_hash;
          ref_seconds = r.compress_s;
        } else {
          same = r.archive_hash == ref_archive &&
                 r.decode_hash == ref_decode;
          deterministic = deterministic && same;
        }
        table.add_row({r.dataset, r.pipeline, std::to_string(r.threads),
                       fixed(r.compress_s, 3), fixed(r.compress_mbs, 1),
                       fixed(ref_seconds / std::max(r.compress_s, 1e-9), 2),
                       fixed(r.cr, 2), fixed(r.psnr_db, 2),
                       same ? "ok" : "MISMATCH"});
        cells.push_back(r);
      }
    }
  }

  table.print();
  const double calib = calibration_mb_s();
  std::cout << "\nhardware threads: " << hw << "\n";
  std::cout << "calibration: " << fixed(calib, 1) << " MB/s\n";
  if (!deterministic)
    std::cout << "DETERMINISM FAILURE: archives differ across thread "
                 "counts\n";

  const std::string metrics_json =
      dpz::obs::MetricsRegistry::instance().snapshot().to_json();
  const std::string path = artifact_path(opt, "BENCH_pipeline.json");
  std::ofstream json_out(path);
  write_json(json_out, cells, opt, hw, calib, deterministic, metrics_json);
  std::cout << "wrote " << path << "\n";

  // Prometheus textfile rendering of the same registry snapshot, for
  // node_exporter-style collection from the CI artifact directory.
  const std::string prom_path = artifact_path(opt, "BENCH_metrics.prom");
  std::ofstream prom_out(prom_path);
  prom_out << dpz::obs::MetricsRegistry::instance()
                  .snapshot()
                  .to_prometheus();
  std::cout << "wrote " << prom_path << "\n";

  const std::string trace_path = artifact_path(opt, "BENCH_trace.json");
  if (dpz::obs::TraceRecorder::instance().write_file(trace_path))
    std::cout << "wrote " << trace_path << " ("
              << dpz::obs::TraceRecorder::instance().event_count()
              << " spans)\n";
  else
    std::cout << "WARNING: cannot write " << trace_path << "\n";

  // --rebaseline replaces the gate: this run becomes the new baseline,
  // calibration metadata included, so future gates normalize against
  // the machine that recorded it. Only a deterministic run may be
  // enshrined — a nondeterministic one would bake mismatched hashes
  // into every later comparison.
  if (opt.rebaseline) {
    if (!deterministic) {
      std::cout << "REBASELINE FAILURE: refusing to record a "
                   "nondeterministic run\n";
      return 1;
    }
    std::ofstream base_out(opt.baseline);
    if (!base_out) {
      std::cout << "REBASELINE FAILURE: cannot write " << opt.baseline
                << "\n";
      return 1;
    }
    write_json(base_out, cells, opt, hw, calib, deterministic,
               metrics_json);
    std::cout << "rebaselined: wrote " << opt.baseline << " (calibration "
              << fixed(calib, 1) << " MB/s, scale " << fixed(opt.scale, 3)
              << ", " << cells.size() << " cells)\n";
    return 0;
  }

  // Throughput gate against the committed baseline. A missing default
  // baseline only skips the gate; an explicitly requested one must
  // exist.
  bool gate_ok = true;
  std::ifstream base_in(opt.baseline);
  if (!base_in) {
    if (opt.baseline_explicit) {
      std::cout << "BASELINE FAILURE: cannot read " << opt.baseline
                << "\n";
      gate_ok = false;
    } else {
      std::cout << "no baseline at " << opt.baseline << "; gate skipped\n";
    }
  } else {
    std::stringstream buf;
    buf << base_in.rdbuf();
    try {
      const dpz::json::Value doc = dpz::json::parse(buf.str());
      const std::vector<std::string> failures = gate_against_baseline(
          doc, cells, opt.scale, calib, opt.max_regression);
      if (failures.empty()) {
        std::cout << "baseline gate: ok vs " << opt.baseline
                  << " (allowed drop "
                  << fixed(opt.max_regression * 100.0, 0) << "%)\n";
      } else {
        gate_ok = false;
        std::cout << "BASELINE FAILURE vs " << opt.baseline
                  << " (allowed drop "
                  << fixed(opt.max_regression * 100.0, 0)
                  << "%; loosen with --max-regression=<f> or "
                     "DPZ_BENCH_MAX_REGRESSION):\n";
        for (const std::string& f : failures) std::cout << "  " << f << "\n";
      }
    } catch (const std::exception& e) {
      std::cout << "BASELINE FAILURE: cannot parse " << opt.baseline
                << ": " << e.what() << "\n";
      gate_ok = false;
    }
  }
  return deterministic && gate_ok ? 0 : 1;
}
