// Substrate micro-benchmarks: FFT and DCT throughput across the lengths
// the compressor actually uses (block sizes from the divisor-pair layout).
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cmath>
#include <complex>
#include <cstdint>
#include <vector>

#include "dsp/dct.h"
#include "dsp/fft.h"
#include "simd/simd.h"
#include "util/rng.h"

namespace {

using namespace dpz;

void BM_FftPow2(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const FftPlan plan(n);
  Rng rng(1);
  std::vector<std::complex<double>> data(n);
  for (auto& v : data) v = {rng.normal(), rng.normal()};
  for (auto _ : state) {
    plan.execute(data, false);
    benchmark::DoNotOptimize(data.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_FftPow2)->Arg(256)->Arg(2048)->Arg(16384);

void BM_FftBluestein(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const FftPlan plan(n);
  Rng rng(2);
  std::vector<std::complex<double>> data(n);
  for (auto& v : data) v = {rng.normal(), rng.normal()};
  for (auto _ : state) {
    plan.execute(data, false);
    benchmark::DoNotOptimize(data.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_FftBluestein)->Arg(360)->Arg(3600);

void BM_DctForward(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const DctPlan plan(n);
  Rng rng(3);
  std::vector<double> data(n);
  for (auto& v : data) v = rng.normal();
  for (auto _ : state) {
    plan.forward(data, data);
    benchmark::DoNotOptimize(data.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_DctForward)->Arg(2048)->Arg(3600);

void BM_DctRoundTrip(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const DctPlan plan(n);
  Rng rng(4);
  std::vector<double> data(n);
  for (auto& v : data) v = rng.normal();
  for (auto _ : state) {
    plan.forward(data, data);
    plan.inverse(data, data);
    benchmark::DoNotOptimize(data.data());
  }
}
BENCHMARK(BM_DctRoundTrip)->Arg(2048);

// ---- per-kernel, per-ISA rows ------------------------------------------
// The complex kernels the FFT/DCT plans dispatch through, one row per
// ISA tier, so a dispatch regression pins to a specific kernel instead
// of showing up as a diffuse plan slowdown. Unavailable ISAs skip.

bool isa_ready(benchmark::State& state, simd::Isa isa) {
  const std::vector<simd::Isa> avail = simd::available_isas();
  if (std::find(avail.begin(), avail.end(), isa) != avail.end())
    return true;
  state.SkipWithError("ISA unavailable on this host");
  return false;
}

void BM_KernelCmul(benchmark::State& state) {
  const auto isa = static_cast<simd::Isa>(state.range(0));
  if (!isa_ready(state, isa)) return;
  const std::size_t n = 2048;  // complex values; 2n doubles
  Rng rng(6);
  std::vector<double> a(2 * n), b(2 * n), out(2 * n);
  for (double& v : a) v = rng.normal();
  for (double& v : b) v = rng.normal();
  const simd::KernelTable& ops = simd::kernel_table(isa);
  for (auto _ : state) {
    ops.cmul(a.data(), b.data(), out.data(), n);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetLabel(simd::isa_name(isa));
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_KernelCmul)
    ->Arg(static_cast<int>(simd::Isa::kScalar))
    ->Arg(static_cast<int>(simd::Isa::kAvx2))
    ->Arg(static_cast<int>(simd::Isa::kNeon));

void BM_KernelRadix2Stage(benchmark::State& state) {
  const auto isa = static_cast<simd::Isa>(state.range(0));
  if (!isa_ready(state, isa)) return;
  const std::size_t n = 2048;   // complex values
  const std::size_t len = 512;  // one mid-tree butterfly stage
  Rng rng(7);
  std::vector<double> a(2 * n), w(len);  // len/2 twiddles, interleaved
  for (double& v : a) v = rng.normal();
  for (std::size_t k = 0; k < len / 2; ++k) {
    w[2 * k] = std::cos(k * 0.01);
    w[2 * k + 1] = std::sin(k * 0.01);
  }
  const simd::KernelTable& ops = simd::kernel_table(isa);
  for (auto _ : state) {
    ops.radix2_stage(a.data(), n, len, w.data(), false);
    benchmark::DoNotOptimize(a.data());
  }
  state.SetLabel(simd::isa_name(isa));
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_KernelRadix2Stage)
    ->Arg(static_cast<int>(simd::Isa::kScalar))
    ->Arg(static_cast<int>(simd::Isa::kAvx2))
    ->Arg(static_cast<int>(simd::Isa::kNeon));

void BM_KernelCmulRealScale(benchmark::State& state) {
  const auto isa = static_cast<simd::Isa>(state.range(0));
  if (!isa_ready(state, isa)) return;
  const std::size_t n = 2048;
  Rng rng(8);
  std::vector<double> w(2 * n), v(2 * n), out(n);
  for (double& x : w) x = rng.normal();
  for (double& x : v) x = rng.normal();
  const simd::KernelTable& ops = simd::kernel_table(isa);
  for (auto _ : state) {
    ops.cmul_real_scale(w.data(), v.data(), 0.5, out.data(), n);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetLabel(simd::isa_name(isa));
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_KernelCmulRealScale)
    ->Arg(static_cast<int>(simd::Isa::kScalar))
    ->Arg(static_cast<int>(simd::Isa::kAvx2))
    ->Arg(static_cast<int>(simd::Isa::kNeon));

void BM_DctNaive(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(5);
  std::vector<double> data(n);
  for (auto& v : data) v = rng.normal();
  for (auto _ : state) {
    auto out = dct_naive_forward(data);
    benchmark::DoNotOptimize(out.data());
  }
}
BENCHMARK(BM_DctNaive)->Arg(256);

}  // namespace

BENCHMARK_MAIN();
