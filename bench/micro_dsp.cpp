// Substrate micro-benchmarks: FFT and DCT throughput across the lengths
// the compressor actually uses (block sizes from the divisor-pair layout).
#include <benchmark/benchmark.h>

#include <complex>
#include <vector>

#include "dsp/dct.h"
#include "dsp/fft.h"
#include "util/rng.h"

namespace {

using namespace dpz;

void BM_FftPow2(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const FftPlan plan(n);
  Rng rng(1);
  std::vector<std::complex<double>> data(n);
  for (auto& v : data) v = {rng.normal(), rng.normal()};
  for (auto _ : state) {
    plan.execute(data, false);
    benchmark::DoNotOptimize(data.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_FftPow2)->Arg(256)->Arg(2048)->Arg(16384);

void BM_FftBluestein(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const FftPlan plan(n);
  Rng rng(2);
  std::vector<std::complex<double>> data(n);
  for (auto& v : data) v = {rng.normal(), rng.normal()};
  for (auto _ : state) {
    plan.execute(data, false);
    benchmark::DoNotOptimize(data.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_FftBluestein)->Arg(360)->Arg(3600);

void BM_DctForward(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const DctPlan plan(n);
  Rng rng(3);
  std::vector<double> data(n);
  for (auto& v : data) v = rng.normal();
  for (auto _ : state) {
    plan.forward(data, data);
    benchmark::DoNotOptimize(data.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_DctForward)->Arg(2048)->Arg(3600);

void BM_DctRoundTrip(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const DctPlan plan(n);
  Rng rng(4);
  std::vector<double> data(n);
  for (auto& v : data) v = rng.normal();
  for (auto _ : state) {
    plan.forward(data, data);
    plan.inverse(data, data);
    benchmark::DoNotOptimize(data.data());
  }
}
BENCHMARK(BM_DctRoundTrip)->Arg(2048);

void BM_DctNaive(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(5);
  std::vector<double> data(n);
  for (auto& v : data) v = rng.normal();
  for (auto _ : state) {
    auto out = dct_naive_forward(data);
    benchmark::DoNotOptimize(out.data());
  }
}
BENCHMARK(BM_DctNaive)->Arg(256);

}  // namespace

BENCHMARK_MAIN();
