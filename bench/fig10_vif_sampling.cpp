// Figure 10 + SS V-C6: the sampling strategy end to end.
//   (1) VIF distributions of HACC-vx / Isotropic / PHIS at sampling rates
//       2.5% and 1% (box-plot five-number summaries) — shape: HACC-vx sits
//       below the cutoff of 5, the others clearly above, already at 1%.
//   (2) Parameter-selection accuracy: estimate k_e and the CR_p band from
//       S = 5 and S = 10 subsets, then check whether the actually achieved
//       paper-accounting CR falls inside the band. Shape: S = 10 predicts
//       more reliably than S = 5 (paper: 76.6% vs 63.3% hit rate).
#include <iostream>

#include "bench_common.h"
#include "core/analysis.h"
#include "core/blocking.h"
#include "core/sampling.h"
#include "dsp/dct.h"
#include "metrics/metrics.h"
#include "stats/descriptive.h"
#include "stats/vif.h"
#include "util/thread_pool.h"

namespace {

using namespace dpz;
using namespace dpz::bench;

Matrix spatial_block_matrix(const FloatArray& data) {
  const BlockLayout layout = choose_block_layout(data.size());
  return to_blocks(data.flat(), layout);
}

}  // namespace

int main(int argc, char** argv) {
  const BenchOptions opt = parse_options(argc, argv);
  std::cout << "=== Figure 10: VIF probe + sampling-strategy accuracy "
               "===\n\n";

  // ---- VIF box plots ---------------------------------------------------
  TablePrinter vif_table({"dataset", "SR", "min", "q1", "median", "q3",
                          "max", "below cutoff (5)?"});
  for (const char* name : {"HACC-vx", "Isotropic", "PHIS"}) {
    const Dataset ds = make_dataset(name, opt.scale, opt.seed);
    const Matrix blocks = spatial_block_matrix(ds.data);
    for (const double sr : {0.025, 0.01}) {
      Rng rng(opt.seed + 7);
      const std::vector<double> vifs = sampled_vif(blocks, sr, 256, rng);
      const BoxStats box = box_stats(vifs);
      vif_table.add_row({name, fixed(100.0 * sr, 1) + "%",
                         fixed(box.min, 2), fixed(box.q1, 2),
                         fixed(box.median, 2), fixed(box.q3, 2),
                         fixed(box.max, 2),
                         box.median < kVifCutoff ? "yes" : "no"});
    }
    std::cout << "probed " << name << "\n";
  }
  std::cout << "\n";
  vif_table.print();
  std::cout << "(paper: HACC-vx falls below the cutoff already at SR = 1%, "
               "Isotropic and PHIS sit clearly above)\n\n";

  // ---- CR_p prediction accuracy -----------------------------------------
  TablePrinter pred_table({"dataset", "S", "k_e", "full k", "CR_p low",
                           "CR_p high", "achieved CR", "hit?"});
  int hits5 = 0, total5 = 0, hits10 = 0, total10 = 0;

  for (const std::string& name : table_datasets()) {
    const Dataset ds = make_dataset(name, opt.scale, opt.seed);
    const DpzAnalysis analysis(ds.data);
    const Matrix& blocks = analysis.dct_blocks();

    for (const std::size_t s : {std::size_t{5}, std::size_t{10}}) {
      SamplingConfig scfg;
      scfg.subset_count = s;
      scfg.tve = 0.99999;
      scfg.seed = opt.seed;
      scfg.quant_error_bound = 1e-4;
      scfg.wide_codes = true;
      {
        Rng vif_rng(opt.seed);
        scfg.precomputed_vifs =
            sampled_vif(spatial_block_matrix(ds.data), 0.01, 256, vif_rng);
      }
      const SamplingReport report = run_sampling(blocks, scfg);

      // Achieved CR in the paper's accounting (stage factors, no basis),
      // using the sampled k.
      QuantizerConfig qcfg;
      qcfg.error_bound = 1e-4;
      qcfg.wide_codes = true;
      const auto ev = analysis.evaluate(report.full_k, qcfg);
      const double achieved = ev.accounting.cr_stage12() *
                              ev.accounting.cr_stage3() *
                              ev.accounting.cr_zlib();
      const bool hit = achieved >= report.cr_estimate_low &&
                       achieved <= report.cr_estimate_high;
      if (s == 5) {
        ++total5;
        hits5 += hit ? 1 : 0;
      } else {
        ++total10;
        hits10 += hit ? 1 : 0;
      }
      pred_table.add_row(
          {name, std::to_string(s), fixed(report.k_estimate, 1),
           std::to_string(report.full_k), fixed(report.cr_estimate_low, 2),
           fixed(report.cr_estimate_high, 2), fixed(achieved, 2),
           hit ? "yes" : "no"});
    }
    std::cout << "sampled " << name << "\n";
  }

  std::cout << "\n";
  pred_table.print();
  std::cout << "hit rate: S=5 " << hits5 << "/" << total5 << ", S=10 "
            << hits10 << "/" << total10
            << " (paper: 63.3% vs 76.6% — higher S predicts better)\n";
  maybe_write_csv(opt, "fig10_vif_sampling", pred_table);
  return 0;
}
