// Table II: compression performance of knee-point detection with the two
// curve fits (1-D interpolation vs polynomial) on six datasets, for both
// DPZ schemes. Reports CR, PSNR, and the mean range-relative error theta.
//
// Shape to reproduce: knee-point selection is aggressive (high CR at
// modest PSNR); the polynomial fit trades CR for accuracy (the paper
// measures 1.5X-5X lower CR with polyn but equal-or-better PSNR).
#include <iostream>

#include "bench_common.h"
#include "core/analysis.h"
#include "metrics/metrics.h"

namespace {

using namespace dpz;
using namespace dpz::bench;

}  // namespace

int main(int argc, char** argv) {
  const BenchOptions opt = parse_options(argc, argv);
  std::cout << "=== Table II: knee-point detection, 1D vs polynomial "
               "interpolation ===\n\n";

  TablePrinter table({"dataset", "scheme", "fit", "k", "CR", "PSNR (dB)",
                      "mean theta"});

  for (const std::string& name : table_datasets()) {
    const Dataset ds = make_dataset(name, opt.scale, opt.seed);
    const DpzAnalysis analysis(ds.data);
    const std::uint64_t original_bytes = ds.data.size() * sizeof(float);

    for (const bool strict : {false, true}) {
      QuantizerConfig qcfg;
      qcfg.error_bound = strict ? 1e-4 : 1e-3;
      qcfg.wide_codes = strict;
      for (const KneeFit fit : {KneeFit::kFit1D, KneeFit::kFitPolyn}) {
        const std::size_t k = analysis.k_for_knee(fit);
        const auto ev = analysis.evaluate(k, qcfg);
        const double cr = compression_ratio(original_bytes,
                                            ev.accounting.archive_bytes);
        table.add_row(
            {name, strict ? "DPZ-s" : "DPZ-l",
             fit == KneeFit::kFit1D ? "1D" : "polyn", std::to_string(k),
             fixed(cr, 2), fixed(ev.stage3_error.psnr_db, 2),
             scientific(ev.stage3_error.mean_rel_error, 2)});
      }
    }
    std::cout << "finished " << name << "\n";
  }

  std::cout << "\n";
  table.print();
  std::cout << "(paper: polyn fitting improves accuracy but lowers CR by "
               "1.5X-5X)\n";
  maybe_write_csv(opt, "table2_kneepoint", table);
  return 0;
}
