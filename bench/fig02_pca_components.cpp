// Figure 2: (a) overlay statistics of selected block-feature vectors of a
// FLDSC-class field and (b-d) the distributions of the 1st, 2nd, and 30th
// PCA components after projection. The paper's point: the 1st component
// captures the overall trend of the overlaid blocks while later
// components carry progressively less structure — the basis of k-PCA
// selection.
#include <algorithm>
#include <iostream>

#include "bench_common.h"
#include "core/analysis.h"
#include "stats/descriptive.h"
#include "stats/histogram.h"

namespace {

using namespace dpz;
using namespace dpz::bench;

}  // namespace

int main(int argc, char** argv) {
  const BenchOptions opt = parse_options(argc, argv);
  std::cout << "=== Figure 2: block overlay and PCA component "
               "distributions (FLDSC) ===\n\n";

  const Dataset ds = make_dataset("FLDSC", opt.scale, opt.seed);
  const DpzAnalysis analysis(ds.data);
  const BlockLayout& layout = analysis.layout();
  std::cout << "block layout: " << layout.m << " blocks x " << layout.n
            << " datapoints\n\n";

  // (a) overlay of 7 evenly spaced block-feature vectors (summarized as
  // per-block stats; the paper plots them on one axis).
  std::cout << "(a) selected block-feature vectors (DCT domain):\n";
  TablePrinter overlay({"block", "mean", "std", "min", "max"});
  for (std::size_t pick = 0; pick < 7; ++pick) {
    const std::size_t b = pick * (layout.m - 1) / 6;
    const auto row = analysis.dct_blocks().row(b);
    std::vector<double> v(row.begin(), row.end());
    overlay.add_row({"bk" + std::to_string(b + 1), scientific(mean_of(v), 2),
                     scientific(stddev_of(v), 2),
                     scientific(*std::min_element(v.begin(), v.end()), 2),
                     scientific(*std::max_element(v.begin(), v.end()), 2)});
  }
  overlay.print();

  // (b)-(d) component distributions.
  const std::size_t max_comp = std::min<std::size_t>(layout.m, 30);
  const Matrix scores = analysis.model().transform(
      analysis.dct_blocks(), max_comp);

  TablePrinter comps({"component", "std (spread)", "share of 1st's std"});
  const auto row1 = scores.row(0);
  const double std1 = stddev_of({row1.begin(), row1.size()});
  for (const std::size_t c : {std::size_t{1}, std::size_t{2}, max_comp}) {
    const auto row = scores.row(c - 1);
    std::vector<double> v(row.begin(), row.end());
    std::cout << "\n(" << static_cast<char>('a' + c % 26)
              << ") distribution of PCA component " << c << ":\n"
              << Histogram::auto_ranged(v, 32).render_ascii(40);
    comps.add_row({std::to_string(c), scientific(stddev_of(v), 2),
                   fixed(100.0 * stddev_of(v) / std1, 2) + "%"});
  }

  std::cout << "\nComponent spread summary (information decays with "
               "component index):\n";
  comps.print();
  maybe_write_csv(opt, "fig02_pca_components", comps);
  return 0;
}
