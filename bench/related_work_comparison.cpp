// Related-work comparison (beyond the paper's Fig 6): all six compressor
// families the paper's taxonomy (SS I, SS VI) describes, side by side on
// one dataset per application family:
//   prediction-based  SZ-like
//   transform-based   DPZ, DCTZ-like (its predecessor), ZFP-like,
//                     TTHRESH-like (tensor)
//   multigrid-based   MGARD-like
// Each is swept over three of its own operating points. TTHRESH-like is
// tensor-only and skips the 1-D HACC family.
#include <iostream>
#include <memory>

#include "baselines/dctzlike.h"
#include "baselines/mgard_like.h"
#include "baselines/szlike.h"
#include "baselines/tthresh_like.h"
#include "baselines/zfplike.h"
#include "bench_common.h"
#include "core/dpz.h"
#include "metrics/metrics.h"

namespace {

using namespace dpz;
using namespace dpz::bench;

}  // namespace

int main(int argc, char** argv) {
  const BenchOptions opt = parse_options(argc, argv);
  std::cout << "=== Related work: all six compressor families ===\n\n";

  TablePrinter table(
      {"dataset", "compressor", "setting", "bit-rate", "PSNR (dB)", "CR"});

  for (const char* name : {"FLDSC", "Isotropic", "HACC-x"}) {
    const Dataset ds = make_dataset(name, opt.scale, opt.seed);
    const std::uint64_t bytes = ds.data.size() * sizeof(float);

    auto add = [&](const std::string& comp, const std::string& setting,
                   const std::vector<std::uint8_t>& archive,
                   const FloatArray& back) {
      const double cr = compression_ratio(bytes, archive.size());
      table.add_row({name, comp, setting, fixed(bit_rate_f32(cr), 3),
                     fixed(compute_error_stats(ds.data.flat(), back.flat())
                               .psnr_db,
                           2),
                     fixed(cr, 2)});
    };

    for (const double tve : {0.999, 0.99999, 0.9999999}) {
      DpzConfig config = DpzConfig::strict();
      config.tve = tve;
      const auto archive = dpz_compress(ds.data, config);
      add("DPZ-s", tve_label(tve), archive, dpz_decompress(archive));
    }
    for (const double rel : {1e-2, 1e-3, 1e-4}) {
      SzLikeConfig config;
      config.relative_bound = rel;
      const auto archive = szlike_compress(ds.data, config);
      add("SZ-like", "rel " + scientific(rel, 0), archive,
          szlike_decompress(archive));
    }
    for (const double rel : {1e-2, 1e-3, 1e-4}) {
      DctzLikeConfig config;
      config.relative_bound = rel;
      const auto archive = dctzlike_compress(ds.data, config);
      add("DCTZ-like", "rel " + scientific(rel, 0), archive,
          dctzlike_decompress(archive));
    }
    for (const unsigned precision : {8U, 14U, 20U}) {
      ZfpLikeConfig config;
      config.precision = precision;
      const auto archive = zfplike_compress(ds.data, config);
      add("ZFP-like", "prec " + std::to_string(precision), archive,
          zfplike_decompress(archive));
    }
    for (const double rel : {1e-2, 1e-3, 1e-4}) {
      MgardLikeConfig config;
      config.relative_bound = rel;
      const auto archive = mgard_like_compress(ds.data, config);
      add("MGARD-like", "rel " + scientific(rel, 0), archive,
          mgard_like_decompress(archive));
    }
    if (ds.data.rank() >= 2) {
      for (const double energy : {0.999, 0.99999, 0.9999999}) {
        TthreshLikeConfig config;
        config.energy = energy;
        const auto archive = tthresh_like_compress(ds.data, config);
        add("TTHRESH-like", "E " + tve_label(energy), archive,
            tthresh_like_decompress(archive));
      }
    }
    std::cout << "finished " << name << "\n";
  }

  std::cout << "\n";
  table.print();
  std::cout << "(the paper evaluates SZ and ZFP only; DCTZ-like, "
               "TTHRESH-like, and MGARD-like cover the rest of its SS VI "
               "taxonomy)\n";
  maybe_write_csv(opt, "related_work_comparison", table);
  return 0;
}
