// Ablation (paper future work, SS VII): "analyze the effect of DCT
// coefficients truncation before applying PCA."
//
// Sweeps the kept fraction of per-block DCT coefficients on a smooth and
// a broadband dataset. Expectation: on smooth data, truncation leaves
// fidelity nearly untouched while shrinking k (the covariance no longer
// explains the noise tail), so CR improves cheaply; on broadband data the
// truncated tail carries real signal, so PSNR pays immediately.
#include <iostream>

#include "bench_common.h"
#include "core/dpz.h"
#include "metrics/metrics.h"

namespace {

using namespace dpz;
using namespace dpz::bench;

}  // namespace

int main(int argc, char** argv) {
  const BenchOptions opt = parse_options(argc, argv);
  std::cout << "=== Ablation: DCT coefficient truncation before PCA ===\n\n";

  TablePrinter table({"dataset", "kept fraction", "k", "CR", "PSNR (dB)",
                      "max err"});

  for (const char* name : {"FLDSC", "PHIS", "Isotropic"}) {
    const Dataset ds = make_dataset(name, opt.scale, opt.seed);
    for (const double keep : {1.0, 0.5, 0.25, 0.1, 0.05}) {
      DpzConfig config = DpzConfig::strict();
      config.tve = 0.99999;
      config.dct_keep_fraction = keep;

      DpzStats stats;
      const auto archive = dpz_compress(ds.data, config, &stats);
      const FloatArray back = dpz_decompress(archive);
      const ErrorStats err =
          compute_error_stats(ds.data.flat(), back.flat());
      table.add_row({name, fixed(keep, 2), std::to_string(stats.k),
                     fixed(stats.cr_archive(), 2), fixed(err.psnr_db, 2),
                     scientific(err.max_abs_error, 2)});
    }
    std::cout << "finished " << name << "\n";
  }

  std::cout << "\n";
  table.print();
  std::cout << "(smooth data tolerates aggressive truncation; broadband "
               "turbulence pays in PSNR immediately)\n";
  maybe_write_csv(opt, "ablation_dct_truncation", table);
  return 0;
}
