// Ablation of the lossless add-on choice: the paper picks plain zlib for
// its speed and simplicity (SS IV-C). This bench measures, on the actual
// Stage-3 code streams, what the alternatives would buy:
//   zlib            — the paper's (and this library's) choice
//   huffman + zlib  — SZ's entropy stage
//   shuffle + zlib  — the byte-planes trick used for the basis
//   zlib level 9    — maximum-effort deflate
#include <cmath>
#include <iostream>

#include "bench_common.h"
#include "codec/huffman.h"
#include "codec/quantizer.h"
#include "codec/shuffle.h"
#include "codec/zlib_codec.h"
#include "core/analysis.h"
#include "util/timer.h"

namespace {

using namespace dpz;
using namespace dpz::bench;

}  // namespace

int main(int argc, char** argv) {
  const BenchOptions opt = parse_options(argc, argv);
  std::cout << "=== Ablation: lossless add-on on the Stage-3 code stream "
               "===\n\n";

  TablePrinter table({"dataset", "scheme", "codes", "zlib", "huff+zlib",
                      "shuffle+zlib", "zlib-9", "zlib s", "huff s"});

  for (const char* name : {"CLDHGH", "PHIS", "Isotropic"}) {
    const Dataset ds = make_dataset(name, opt.scale, opt.seed);
    const DpzAnalysis analysis(ds.data);
    const std::size_t k = analysis.k_for_tve(0.99999);

    for (const bool strict : {false, true}) {
      QuantizerConfig qcfg;
      qcfg.error_bound = strict ? 1e-4 : 1e-3;
      qcfg.wide_codes = strict;

      // Reproduce the exact Stage-3 code stream.
      Matrix scores = analysis.model().transform(analysis.dct_blocks(), k);
      const double scale = [&] {
        double mean = 0.0;
        for (const double v : scores.row(0)) mean += v;
        mean /= static_cast<double>(scores.cols());
        double var = 0.0;
        for (const double v : scores.row(0)) var += (v - mean) * (v - mean);
        return 8.0 * std::sqrt(var / static_cast<double>(scores.cols()));
      }();
      for (double& v : scores.flat()) v /= scale;
      const QuantizedStream qs = quantize(scores.flat(), qcfg);

      Timer timer;
      const std::size_t zlib_size = zlib_compress(qs.codes).size();
      const double zlib_s = timer.reset();

      // Huffman over the code symbols, then zlib the Huffman bytes.
      std::vector<std::uint32_t> symbols(qs.count);
      const std::size_t stride = qcfg.code_bytes();
      for (std::size_t i = 0; i < qs.count; ++i) {
        std::uint32_t code = qs.codes[i * stride];
        if (qcfg.wide_codes)
          code |= static_cast<std::uint32_t>(qs.codes[i * stride + 1]) << 8;
        symbols[i] = code;
      }
      timer.reset();
      const std::size_t huff_size =
          zlib_compress(huffman_encode(symbols, qcfg.code_count())).size();
      const double huff_s = timer.reset();

      const std::size_t shuffle_size =
          stride > 1
              ? zlib_compress(shuffle_bytes(qs.codes, stride)).size()
              : zlib_size;
      const std::size_t zlib9_size = zlib_compress(qs.codes, 9).size();

      table.add_row({name, strict ? "DPZ-s" : "DPZ-l",
                     human_bytes(qs.codes.size()), human_bytes(zlib_size),
                     human_bytes(huff_size), human_bytes(shuffle_size),
                     human_bytes(zlib9_size), fixed(zlib_s, 3),
                     fixed(huff_s, 3)});
    }
    std::cout << "finished " << name << "\n";
  }

  std::cout << "\n";
  table.print();
  std::cout << "(huffman+zlib would shave ~10-25% off the strict "
               "scheme's wide-code streams at comparable cost — a "
               "worthwhile future format upgrade; for DPZ-l's 1-byte "
               "codes deflate alone is already near-optimal)\n";
  maybe_write_csv(opt, "ablation_entropy_stage", table);
  return 0;
}
