// Table III: per-stage compression-ratio breakdown vs TVE on six
// datasets, both DPZ schemes. Stages use the paper's accounting:
//   Stage 1&2  = M / k                    (feature reduction)
//   Stage 3    = f32 scores / (codes + escaped outliers)
//   zlib       = stage-3 bytes / zlib'd bytes
// Shapes to reproduce: Stage-1&2 CR falls as TVE tightens; Stage-3 and
// zlib CRs rise with TVE; DPZ-l's Stage 3 sits between 2X and 4X while
// DPZ-s stays ~2X; CESM-class data beats JHTDB which beats HACC-vx.
#include <iostream>

#include "bench_common.h"
#include "core/analysis.h"
#include "metrics/metrics.h"

namespace {

using namespace dpz;
using namespace dpz::bench;

}  // namespace

int main(int argc, char** argv) {
  const BenchOptions opt = parse_options(argc, argv);
  std::cout << "=== Table III: per-stage CR breakdown (paper accounting) "
               "===\n\n";

  TablePrinter table({"dataset", "TVE", "scheme", "k", "CR stage1&2",
                      "CR stage3", "CR zlib", "end-to-end CR"});

  for (const std::string& name : table_datasets()) {
    const Dataset ds = make_dataset(name, opt.scale, opt.seed);
    const DpzAnalysis analysis(ds.data);
    const std::uint64_t original_bytes = ds.data.size() * sizeof(float);

    for (const double tve : tve_table_points()) {
      const std::size_t k = analysis.k_for_tve(tve);
      for (const bool strict : {false, true}) {
        QuantizerConfig qcfg;
        qcfg.error_bound = strict ? 1e-4 : 1e-3;
        qcfg.wide_codes = strict;
        const auto ev = analysis.evaluate(k, qcfg);
        const DpzStats& st = ev.accounting;
        table.add_row({name, tve_label(tve), strict ? "DPZ-s" : "DPZ-l",
                       std::to_string(k), fixed(st.cr_stage12(), 3),
                       fixed(st.cr_stage3(), 3), fixed(st.cr_zlib(), 3),
                       fixed(compression_ratio(original_bytes,
                                               st.archive_bytes),
                             2)});
      }
    }
    std::cout << "finished " << name << "\n";
  }

  std::cout << "\n";
  table.print();
  std::cout << "(note: 'CR stage1&2' = M/k like the paper, which excludes "
               "the stored PCA basis; 'end-to-end CR' includes it)\n";
  maybe_write_csv(opt, "table3_cr_breakdown", table);
  return 0;
}
