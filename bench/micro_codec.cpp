// Substrate micro-benchmarks: quantizer, Huffman, and zlib throughput on
// score-like and code-like data.
#include <benchmark/benchmark.h>

#include "codec/huffman.h"
#include "codec/quantizer.h"
#include "codec/zlib_codec.h"
#include "util/rng.h"

namespace {

using namespace dpz;

std::vector<double> gaussian_scores(std::size_t n, double sigma,
                                    std::uint64_t seed) {
  Rng rng(seed);
  std::vector<double> v(n);
  for (double& x : v) x = rng.normal(0.0, sigma);
  return v;
}

void BM_Quantize(benchmark::State& state) {
  QuantizerConfig cfg;
  cfg.wide_codes = state.range(0) != 0;
  cfg.error_bound = cfg.wide_codes ? 1e-4 : 1e-3;
  // Scores normalized the DPZ way: ~N(0, 1/8) inside the quantizer band.
  const std::vector<double> values =
      gaussian_scores(1 << 20, 1.0 / 8.0, 1);
  for (auto _ : state) {
    const QuantizedStream qs = quantize(values, cfg);
    benchmark::DoNotOptimize(qs.codes.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(values.size()) * 8);
}
BENCHMARK(BM_Quantize)->Arg(0)->Arg(1);

void BM_Dequantize(benchmark::State& state) {
  QuantizerConfig cfg;
  cfg.wide_codes = true;
  cfg.error_bound = 1e-4;
  const std::vector<double> values =
      gaussian_scores(1 << 20, 1.0 / 8.0, 2);
  const QuantizedStream qs = quantize(values, cfg);
  std::vector<double> out(values.size());
  for (auto _ : state) {
    dequantize(qs, cfg, out);
    benchmark::DoNotOptimize(out.data());
  }
}
BENCHMARK(BM_Dequantize);

void BM_HuffmanEncode(benchmark::State& state) {
  Rng rng(3);
  std::vector<std::uint32_t> symbols(1 << 18);
  for (auto& s : symbols) {
    // SZ-like residual distribution: strongly peaked at the center code.
    const double g = rng.normal(0.0, 30.0);
    s = static_cast<std::uint32_t>(
        std::clamp(32768.0 + g, 0.0, 65535.0));
  }
  for (auto _ : state) {
    const auto bytes = huffman_encode(symbols, 65536);
    benchmark::DoNotOptimize(bytes.data());
  }
}
BENCHMARK(BM_HuffmanEncode);

void BM_HuffmanDecode(benchmark::State& state) {
  Rng rng(4);
  std::vector<std::uint32_t> symbols(1 << 18);
  for (auto& s : symbols)
    s = static_cast<std::uint32_t>(
        std::clamp(32768.0 + rng.normal(0.0, 30.0), 0.0, 65535.0));
  const auto bytes = huffman_encode(symbols, 65536);
  for (auto _ : state) {
    const auto out = huffman_decode(bytes);
    benchmark::DoNotOptimize(out.data());
  }
}
BENCHMARK(BM_HuffmanDecode);

void BM_ZlibCompress(benchmark::State& state) {
  Rng rng(5);
  std::vector<std::uint8_t> data(1 << 20);
  for (auto& b : data)
    b = static_cast<std::uint8_t>(rng.uniform_index(32));
  const int level = static_cast<int>(state.range(0));
  for (auto _ : state) {
    const auto z = zlib_compress(data, level);
    benchmark::DoNotOptimize(z.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(data.size()));
}
BENCHMARK(BM_ZlibCompress)->Arg(1)->Arg(6);

}  // namespace

BENCHMARK_MAIN();
