// Ablation of the block-decomposition design choice (SS IV-A): the paper
// claims that under M < N, larger M (more, shorter blocks) improves
// compressibility, and picks N/M as the smallest divisor ratio > 1.
//
// Sweeps every balanced divisor pair (M, N) of the flattened size and
// reports k, paper-accounting CR, end-to-end CR, and PSNR at a fixed TVE.
#include <algorithm>
#include <iostream>

#include "bench_common.h"
#include "core/analysis.h"
#include "metrics/metrics.h"

namespace {

using namespace dpz;
using namespace dpz::bench;

// All divisor pairs with 8 <= M < N (coarse grid to keep runtime sane).
std::vector<BlockLayout> layout_candidates(std::size_t total) {
  std::vector<BlockLayout> layouts;
  for (std::size_t m = 8; m * m < total; ++m) {
    if (total % m != 0) continue;
    BlockLayout layout;
    layout.m = m;
    layout.n = total / m;
    layout.original_total = total;
    layout.padded = false;
    layouts.push_back(layout);
  }
  // Thin out to at most 7 representative pairs, keeping the extremes.
  if (layouts.size() > 7) {
    std::vector<BlockLayout> picked;
    for (std::size_t i = 0; i < 7; ++i)
      picked.push_back(layouts[i * (layouts.size() - 1) / 6]);
    layouts = std::move(picked);
  }
  return layouts;
}

}  // namespace

int main(int argc, char** argv) {
  const BenchOptions opt = parse_options(argc, argv);
  std::cout << "=== Ablation: block layout (M x N choice) on FLDSC ===\n\n";

  const Dataset ds = make_dataset("FLDSC", opt.scale, opt.seed);
  const BlockLayout chosen = choose_block_layout(ds.data.size());
  std::cout << "automatic choice: M = " << chosen.m << ", N = " << chosen.n
            << "\n\n";

  TablePrinter table({"M", "N", "N/M", "k", "CR stage1&2 (M/k)",
                      "end-to-end CR", "PSNR (dB)"});

  for (const BlockLayout& layout : layout_candidates(ds.data.size())) {
    const DpzAnalysis analysis(ds.data, false, layout);
    QuantizerConfig qcfg;
    qcfg.error_bound = 1e-4;
    qcfg.wide_codes = true;
    const std::size_t k = analysis.k_for_tve(0.99999);
    const auto ev = analysis.evaluate(k, qcfg);
    table.add_row(
        {std::to_string(layout.m), std::to_string(layout.n),
         fixed(static_cast<double>(layout.n) /
                   static_cast<double>(layout.m),
               1),
         std::to_string(k), fixed(ev.accounting.cr_stage12(), 2),
         fixed(compression_ratio(ds.data.size() * 4,
                                 ev.accounting.archive_bytes),
               2),
         fixed(ev.stage3_error.psnr_db, 2)});
    std::cout << "evaluated M = " << layout.m << "\n";
  }

  std::cout << "\n";
  table.print();
  std::cout << "(paper: under M < N, larger M raises the compression "
               "ratio; the automatic rule picks the most balanced pair)\n";
  maybe_write_csv(opt, "ablation_block_layout", table);
  return 0;
}
