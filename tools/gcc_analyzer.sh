#!/usr/bin/env bash
# GCC -fanalyzer sweep over every src/ translation unit
# (docs/STATIC_ANALYSIS.md). A second, independent static-analysis
# opinion next to Clang's thread-safety analysis and dpz_analyze.
#
# Gate: a diagnostic whose PRIMARY location is a file under src/ fails
# the run. Diagnostics anchored elsewhere are reported but non-fatal,
# because with GCC 12 the C++ front of -fanalyzer is young and its
# known false-positive shapes are exactly the ones with no src/ anchor.
# Triaged examples from this tree (kept here so a future bump to a
# fixed GCC can delete the filter and go fully strict):
#
#   * "cc1plus: warning: use of uninitialized value '<unknown>'
#     [-Wanalyzer-use-of-uninitialized-value]" — no file anchor at all;
#     the event trail walks DPZ_REQUIRE's throw helper
#     (src/util/error.h detail::throw_invalid_argument). The analyzer
#     loses track of the std::string temporaries on the
#     exception-unwind path; the "uninitialized" value does not exist
#     in the program. Reproduced by a plain
#     `if (!p) throw std::invalid_argument(std::string(a) + b);`.
#   * "__last.__normal_iterator<...>::_M_current" uninitialized-value
#     warnings against std::sort/std::accumulate calls (src/stats) —
#     anchored at cc1plus, events entirely inside libstdc++'s
#     <bits/stl_algo.h>; the iterator is value-initialized by
#     std::vector::end().
#   * "-Wanalyzer-malloc-leak" anchored in
#     /usr/include/c++/12/ext/aligned_buffer.h for a std::map copy in
#     src/tools/cli_app.cpp — the analyzer does not model
#     _Rb_tree::_M_copy reclaiming nodes via _Reuse_or_alloc_node.
#
# A true positive in this repo's code carries a src/FILE:LINE primary
# anchor (the analyzer points at the statement it blames), so the gate
# still bites where it matters. The handful of src/-anchored
# diagnostics that are still analyzer artifacts are suppressed one by
# one in SUPPRESSIONS below, each with its triage.
#
# Usage: tools/gcc_analyzer.sh [-jN]   (default: nproc jobs)
# Exit status: 0 clean, 1 src/-anchored diagnostic or compile error,
# 2 environment error.
set -u

cd "$(dirname "$0")/.."

jobs="$(nproc 2>/dev/null || echo 4)"
case "${1:-}" in
  -j*) jobs="${1#-j}" ;;
esac

gxx="${GXX:-g++}"
if ! "$gxx" -fanalyzer -fsyntax-only -x c++ /dev/null 2>/dev/null; then
  echo "gcc_analyzer: $gxx does not support -fanalyzer" >&2
  exit 2
fi

logdir="$(mktemp -d)"
trap 'rm -rf "$logdir"' EXIT

# Each TU compiles independently (-c to /dev/null): the analyzer is
# intraprocedural per TU and the sweep parallelizes cleanly.
find src -name '*.cpp' | sort | xargs -P "$jobs" -I {} sh -c '
  out="$1/$(echo "{}" | tr / _).log"
  '"$gxx"' -std=c++20 -O1 -fanalyzer -Isrc -c "{}" -o /dev/null \
    >"$out" 2>&1 || echo "COMPILE_FAILED {}" >>"$out"
' sh "$logdir"

# Triaged false positives WITH a src/ anchor, suppressed individually.
# Keep this list short and each entry justified; when a GCC upgrade
# fixes the underlying modeling bug, delete the entry and let the gate
# re-arm itself.
SUPPRESSIONS=(
  # DPZ_REQUIRE's throw helper builds the message by std::string
  # concatenation and then throws ([[noreturn]]). GCC 12 does not model
  # the temporaries being destroyed during exception unwinding and
  # reports the fully-owned string as leaked at the concatenation in
  # detail::throw_invalid_argument. Nothing leaks: InvalidArgument
  # copies the message and the unwind runs every destructor.
  "^src/util/error\.h:[0-9]+:[0-9]+: warning: leak of .*basic_string.*\[-Wanalyzer-malloc-leak\]"
  # push_back on std::vector<DecodeReport::FrameError>: the event trail
  # sits entirely inside libstdc++'s _M_realloc_insert /
  # __relocate_a_1, where the analyzer models operator new as possibly
  # returning NULL and then flags the placement copy through '__cur'.
  # Hosted operator new throws std::bad_alloc instead; the diagnostic
  # is anchored at the FrameError declaration only because that is the
  # template argument.
  "^src/core/chunked\.h:[0-9]+:[0-9]+: warning: dereference of (possibly-)?NULL '__cur'.*\[-Wanalyzer-(possible-)?null-dereference\]"
)
suppress_re="$(IFS='|'; echo "${SUPPRESSIONS[*]}")"

status=0
for log in "$logdir"/*.log; do
  [ -s "$log" ] || continue
  if grep -q "COMPILE_FAILED" "$log"; then
    echo "gcc_analyzer: compilation failed:" >&2
    cat "$log" >&2
    status=1
    continue
  fi
  # Primary diagnostic lines look like "FILE:LINE:COL: warning: ...";
  # event-trail lines are indented or pipe-prefixed and never match.
  fatal=$(grep -E '^src/[^ ]*: (warning|error):' "$log" |
    grep -vE "$suppress_re" || true)
  if [ -n "$fatal" ]; then
    echo "gcc_analyzer: src/-anchored diagnostic:" >&2
    cat "$log" >&2
    status=1
  elif grep -qE '(warning|error):' "$log"; then
    echo "gcc_analyzer: note: non-fatal diagnostics (triaged" \
         "false-positive shapes — see header comment):"
    grep -E '(warning|error):' "$log" | head -4 | sed 's/^/    /'
  fi
done

if [ "$status" -eq 0 ]; then
  echo "gcc_analyzer: OK ($(find src -name '*.cpp' | wc -l) translation units)"
fi
exit "$status"
