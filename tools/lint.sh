#!/usr/bin/env bash
# Repository-specific lint rules for the decode fault boundary — now a
# thin wrapper around the dpz_analyze binary (tools/analyze/), which
# implements every rule below as a structured check with file:line
# diagnostics and a --json report. See docs/STATIC_ANALYSIS.md.
#
# clang-tidy (.clang-tidy) covers generic C++ hygiene; the rules here
# encode DPZ's archive-parsing policy, which no generic check expresses:
#
#   1. reinterpret_cast is banned in src/ outside an explicit allowlist
#      (codec/zlib_codec.cpp). Archive bytes must be read through
#      ByteReader/BitReader accessors, which bounds-check and
#      byte-assemble; type-punning a byte span is how unaligned and
#      out-of-bounds reads enter a decoder.          [reinterpret-cast]
#   2. memcpy is banned in src/core and src/codec outside codec/bytes.h.
#      Same rationale: bulk copies out of an archive must flow through
#      the checked get_bytes/get_blob paths so a forged length cannot
#      read past the buffer.                              [raw-memcpy]
#   3. DPZ_REQUIRE is banned inside the ByteReader and BitReader
#      classes. DPZ_REQUIRE states a *caller* contract and must never
#      guard values derived from archive bytes — readers throw
#      FormatError so that malformed input stays a recoverable status
#      (docs/FORMAT.md, "Validation and error behavior").
#                                                   [require-in-reader]
#   4. Every file under tests/golden/ must be tracked by git. The
#      format-stability suite reads those archives from a fresh clone,
#      and the repo-wide *.dpz ignore rule can silently swallow a new
#      fixture: it passes every local run, then fails in CI (or for the
#      next clone) with a missing-file error that looks like a format
#      regression. Any file present on disk but unknown to git —
#      untracked OR ignored — is an error here; `git add -f` the
#      fixture or extend the .gitignore negation.     [golden-tracked]
#   5. zlib_decompress is banned in src/core outside dpz.cpp. The v2
#      integrity contract is verify-before-inflate: every section blob
#      flows through detail::get_section (dpz.cpp), which checks the
#      CRC32C seal before sizing the inflation buffer. A second inflate
#      call site in core would be a path where corrupted bytes reach
#      the allocator unchecked.                     [unguarded-inflate]
#   6. Telemetry span/metric/log-event names are declared once, in the
#      src/obs/names.h tables; production code records through the
#      interned enums. A quoted telemetry name anywhere else in src/ is
#      a stray literal that can drift from the registry, and duplicate
#      display names inside the registry would merge silently in every
#      JSON artifact.              [telemetry-name] [telemetry-dup]
#
# dpz_analyze adds checks with no lint.sh ancestry (status-exhaustive,
# naked-mutex, raw-thread); this wrapper runs all of them.
#
# Usage: tools/lint.sh [--json] [extra dpz_analyze args]
#   --json is forwarded, so CI can consume structured findings.
#   DPZ_ANALYZE=/path/to/dpz_analyze overrides binary discovery.
#
# Exit status: 0 clean, 1 violations found, 2 environment error.
set -u

cd "$(dirname "$0")/.."

# Locate (or build) the analyzer: an explicit override, any configured
# build tree, else a direct compile — the tool has no dependencies
# beyond a C++20 compiler, so lint works before the first cmake run.
analyze="${DPZ_ANALYZE:-}"
if [ -z "$analyze" ]; then
  for candidate in build*/tools/analyze/dpz_analyze; do
    if [ -x "$candidate" ]; then
      analyze="$candidate"
      break
    fi
  done
fi
if [ -z "$analyze" ]; then
  analyze="$(mktemp -d)/dpz_analyze"
  echo "lint: no built dpz_analyze found; compiling one" >&2
  if ! "${CXX:-c++}" -std=c++20 -O1 -I tools \
      tools/analyze/analyze_main.cpp tools/analyze/checks.cpp \
      tools/analyze/lexer.cpp -o "$analyze"; then
    echo "lint: failed to build dpz_analyze" >&2
    exit 2
  fi
fi

# Preserve the historical "lint: OK" success line (but never inside a
# --json stream, which must stay pure JSON on stdout).
"$analyze" --root=. "$@"
rc=$?
if [ "$rc" -eq 0 ]; then
  case " $* " in
    *" --json "*) ;;
    *) echo "lint: OK" ;;
  esac
fi
exit "$rc"
