#!/usr/bin/env bash
# Repository-specific lint rules for the decode fault boundary.
#
# clang-tidy (.clang-tidy) covers generic C++ hygiene; the rules here
# encode DPZ's archive-parsing policy, which no generic check expresses:
#
#   1. reinterpret_cast is banned in src/ outside an explicit allowlist.
#      Archive bytes must be read through ByteReader/BitReader accessors,
#      which bounds-check and byte-assemble; type-punning a byte span is
#      how unaligned/out-of-bounds reads enter a decoder.
#   2. memcpy is banned in src/core and src/codec outside codec/bytes.h.
#      Same rationale: bulk copies out of an archive must flow through the
#      checked get_bytes/get_blob paths so a forged length cannot read
#      past the buffer.
#   3. DPZ_REQUIRE is banned inside the ByteReader and BitReader classes.
#      DPZ_REQUIRE states a *caller* contract and must never guard values
#      derived from archive bytes — readers throw FormatError so that
#      malformed input stays a recoverable status (docs/FORMAT.md,
#      "Validation and error behavior").
#   5. zlib_decompress is banned in src/core outside dpz.cpp. The v2
#      integrity contract is verify-before-inflate: every section blob
#      flows through detail::get_section (dpz.cpp), which checks the
#      CRC32C seal before sizing the inflation buffer. A second inflate
#      call site in core would be a path where corrupted bytes reach the
#      allocator unchecked.
#   6. Telemetry span/metric names are declared once, in the
#      src/obs/names.h tables; production code records through the
#      interned enums. A quoted telemetry name anywhere else in src/ is
#      a stray literal that can drift from the registry.
#
# Exit status: 0 clean, 1 violations found. Run from anywhere.
set -u

cd "$(dirname "$0")/.."
status=0

fail() {
  echo "lint: $1" >&2
  echo "$2" | sed 's/^/    /' >&2
  status=1
}

# --- Rule 1: reinterpret_cast allowlist ---------------------------------
# zlib_codec.cpp interfaces with zlib's Bytef API and is the only place
# allowed to type-pun, on buffers it allocated itself.
allowlist_re='^src/codec/zlib_codec\.cpp$'
casts=$(grep -rn "reinterpret_cast" src --include='*.h' --include='*.cpp' |
  awk -F: -v allow="$allowlist_re" '$1 !~ allow')
if [ -n "$casts" ]; then
  fail "reinterpret_cast outside the allowlist (read archive bytes through ByteReader/BitReader instead):" "$casts"
fi

# --- Rule 2: raw memcpy near the decode path ----------------------------
copies=$(grep -rn "memcpy" src/core src/codec --include='*.h' --include='*.cpp' |
  awk -F: '$1 != "src/codec/bytes.h"')
if [ -n "$copies" ]; then
  fail "memcpy in src/core or src/codec outside codec/bytes.h (use the checked ByteReader accessors):" "$copies"
fi

# --- Rule 3: DPZ_REQUIRE inside reader classes --------------------------
# Extract each reader class body (from its "class X {" line to the first
# column-zero "};") and reject DPZ_REQUIRE inside it.
check_reader() {
  local file="$1" klass="$2"
  local hits
  hits=$(awk -v k="class $klass" '
    index($0, k) { inside = 1 }
    inside && /DPZ_REQUIRE/ { printf "%s:%d:%s\n", FILENAME, FNR, $0 }
    inside && /^};/ { inside = 0 }
  ' "$file")
  if [ -n "$hits" ]; then
    fail "DPZ_REQUIRE inside $klass ($file): readers must throw FormatError for malformed input, DPZ_REQUIRE is for caller contracts only:" "$hits"
  fi
}
check_reader src/codec/bytes.h ByteReader
check_reader src/codec/bitstream.h BitReader

# --- Rule 4: golden fixtures must be tracked ----------------------------
# tests/golden/ holds the format-stability archives the test suite reads
# from a fresh clone. The repo-wide *.dpz ignore rule can silently swallow
# a new fixture, so any file present on disk but unknown to git (untracked
# OR ignored) is an error here.
untracked=$(git ls-files --others tests/golden)
if [ -n "$untracked" ]; then
  fail "untracked file in tests/golden/ (git add -f it, or extend the .gitignore negation — the format-stability tests read fixtures from a fresh clone):" "$untracked"
fi

# --- Rule 5: inflate only behind the checksum gate ----------------------
# detail::get_section in dpz.cpp verifies the section CRC32C before
# inflating; every other core file must obtain decompressed bytes through
# it so no forged blob reaches zlib (or the allocator) unverified.
inflates=$(grep -rn "zlib_decompress" src/core --include='*.h' --include='*.cpp' |
  awk -F: '$1 != "src/core/dpz.cpp"')
if [ -n "$inflates" ]; then
  fail "zlib_decompress in src/core outside dpz.cpp (route section reads through detail::get_section so the CRC is verified before inflation):" "$inflates"
fi

# --- Rule 6: telemetry names live only in src/obs/names.h ---------------
# The name list is extracted from the registry tables themselves, so the
# rule tracks additions automatically. Tests and bench harnesses may
# reference names as consumers of the emitted artifacts; src/ may not.
# Duplicate names inside the registry are rejected too — two ids sharing
# a display name would merge silently in every JSON artifact.
obs_names=$(awk '
  /kSpanInfo\[|kCounterNames\[|kHistNames\[/ { inside = 1 }
  inside && match($0, /"[a-z0-9_]+"/) {
    print substr($0, RSTART + 1, RLENGTH - 2)
  }
  inside && /^};/ { inside = 0 }
' src/obs/names.h)
if [ -z "$obs_names" ]; then
  fail "could not extract telemetry names from src/obs/names.h (table markers renamed?):" ""
else
  dupes=$(printf '%s\n' "$obs_names" | sort | uniq -d)
  if [ -n "$dupes" ]; then
    fail "duplicate telemetry name in src/obs/names.h (every span/metric needs a distinct display name):" "$dupes"
  fi
  obs_re=$(printf '%s\n' "$obs_names" | paste -sd'|' -)
  strays=$(grep -rnE "\"(${obs_re})\"" src --include='*.h' --include='*.cpp' |
    awk -F: '$1 != "src/obs/names.h"')
  if [ -n "$strays" ]; then
    fail "telemetry name literal outside src/obs/names.h (record through the obs enums; names are declared once in the registry):" "$strays"
  fi
fi

if [ "$status" -eq 0 ]; then
  echo "lint: OK"
fi
exit "$status"
