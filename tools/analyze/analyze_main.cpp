// dpz_analyze — the repo-specific static checker (docs/STATIC_ANALYSIS.md).
//
// Enforces DPZ's archive-parse-boundary, concurrency-primitive, and
// enum-exhaustiveness contracts over src/, with file:line diagnostics
// and a machine-readable --json report. tools/lint.sh is a thin wrapper
// around this binary; CI gates on it.
//
// Exit status: 0 clean, 1 findings, 2 usage or environment error.
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "analyze/checks.h"

namespace {

const char* kUsage = R"(usage: dpz_analyze [options]
  --root=DIR     repo root to analyze (default: current directory)
  --json         emit findings as one JSON object on stdout
  --no-golden    skip the git-backed golden-tracked check (rule 4)
  --list-checks  print every check name and contract, then exit 0
)";

void json_escape(const std::string& s, std::ostream& out) {
  for (const char c : s) {
    switch (c) {
      case '"': out << "\\\""; break;
      case '\\': out << "\\\\"; break;
      case '\n': out << "\\n"; break;
      case '\t': out << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          const char* hex = "0123456789abcdef";
          out << "\\u00" << hex[(c >> 4) & 0xF] << hex[c & 0xF];
        } else {
          out << c;
        }
    }
  }
}

void print_json(const std::vector<dpz::analyze::Finding>& findings,
                std::ostream& out) {
  out << "{\n  \"findings\": [";
  for (std::size_t i = 0; i < findings.size(); ++i) {
    const dpz::analyze::Finding& f = findings[i];
    out << (i == 0 ? "\n" : ",\n") << "    {\"check\": \"" << f.check
        << "\", \"file\": \"";
    json_escape(f.file, out);
    out << "\", \"line\": " << f.line << ", \"message\": \"";
    json_escape(f.message, out);
    out << "\"}";
  }
  out << "\n  ],\n  \"count\": " << findings.size() << "\n}\n";
}

}  // namespace

int main(int argc, char** argv) {
  dpz::analyze::Options options;
  options.root = ".";
  bool json = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--root=", 0) == 0) {
      options.root = arg.substr(std::strlen("--root="));
    } else if (arg == "--json") {
      json = true;
    } else if (arg == "--no-golden") {
      options.golden_check = false;
    } else if (arg == "--list-checks") {
      for (const dpz::analyze::CheckInfo& check : dpz::analyze::kChecks)
        std::cout << check.name << ": " << check.description << "\n";
      return 0;
    } else if (arg == "--help" || arg == "-h") {
      std::cout << kUsage;
      return 0;
    } else {
      std::cerr << "dpz_analyze: unknown argument '" << arg << "'\n"
                << kUsage;
      return 2;
    }
  }

  std::string fatal;
  const std::vector<dpz::analyze::Finding> findings =
      dpz::analyze::run_checks(options, &fatal);
  if (!fatal.empty()) {
    std::cerr << "dpz_analyze: " << fatal << "\n";
    return 2;
  }

  if (json) {
    print_json(findings, std::cout);
  } else {
    for (const dpz::analyze::Finding& f : findings)
      std::cout << f.file << ":" << f.line << ": [" << f.check << "] "
                << f.message << "\n";
    if (findings.empty())
      std::cout << "dpz_analyze: OK\n";
    else
      std::cout << "dpz_analyze: " << findings.size() << " finding"
                << (findings.size() == 1 ? "" : "s") << "\n";
  }
  return findings.empty() ? 0 : 1;
}
