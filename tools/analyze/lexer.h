// A lightweight C++ lexer for dpz_analyze (docs/STATIC_ANALYSIS.md).
//
// This is not a compiler front end: it understands exactly enough C++
// to make the repo's contract checks sound where line-oriented regexes
// are not — comments and string literals never produce identifier
// tokens (so `memcpy` in a doc comment is not a violation), string
// contents are decoded into their own tokens (so telemetry-name strays
// are matched on the literal value), preprocessor lines are flagged,
// and brace matching recovers class/enum/function bodies (so "inside
// ByteReader" means the actual class body, not "until the next line
// starting with };").
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

namespace dpz::analyze {

enum class TokKind {
  kIdent,   // identifiers and keywords
  kNumber,  // numeric literals (pp-number: includes suffixes)
  kString,  // string literal — text holds the *contents*, unquoted
  kChar,    // character literal — text holds the contents
  kPunct,   // one punctuator; "::" is fused, everything else single-char
};

struct Token {
  TokKind kind;
  std::string text;
  int line = 0;         // 1-based physical line of the token's start
  bool preproc = false; // token sits on a preprocessor directive line
};

struct SourceFile {
  std::string path;  // root-relative, '/'-separated
  std::vector<Token> tokens;
};

/// Lexes `text` (the contents of `path`). Never fails: malformed input
/// (unterminated literals/comments) is tolerated with best-effort
/// tokens, since the checks must degrade gracefully on code the real
/// compiler would reject anyway.
SourceFile lex(std::string path, const std::string& text);

/// Index of the '}' matching the '{' at token index `open`; npos when
/// unbalanced.
std::size_t match_brace(const std::vector<Token>& toks, std::size_t open);

/// Half-open token-index range [begin, end) of a brace-delimited body
/// (excludes the braces themselves).
struct TokenRange {
  std::size_t begin = 0;
  std::size_t end = 0;
};

/// Body of `class <name> { ... }` (or struct). The name token must
/// directly follow the class/struct keyword — good enough for this
/// tree's declarations, where attributes sit after the name.
std::optional<TokenRange> find_class_body(const std::vector<Token>& toks,
                                          const std::string& name);

/// Body of `enum [class|struct] <name> [: base] { ... }`.
std::optional<TokenRange> find_enum_body(const std::vector<Token>& toks,
                                         const std::string& name);

/// Body of the first function definition named `name`: an identifier
/// token followed by a parameter list and eventually '{' (declarations
/// ending in ';' are skipped).
std::optional<TokenRange> find_function_body(
    const std::vector<Token>& toks, const std::string& name);

}  // namespace dpz::analyze
