#include "analyze/checks.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <map>
#include <optional>
#include <set>
#include <sstream>

#include "analyze/lexer.h"

namespace dpz::analyze {

const std::vector<CheckInfo> kChecks = {
    {"reinterpret-cast",
     "reinterpret_cast is banned in src/ outside codec/zlib_codec.cpp "
     "and the dsp std::complex<->double reinterpretations (fft.cpp, "
     "dct.cpp); archive bytes flow through ByteReader/BitReader"},
    {"raw-memcpy",
     "memcpy is banned in src/core and src/codec outside codec/bytes.h; "
     "bulk copies out of an archive use the checked get_bytes paths"},
    {"require-in-reader",
     "DPZ_REQUIRE is banned inside ByteReader/BitReader; readers throw "
     "FormatError so malformed input stays a recoverable status"},
    {"golden-tracked",
     "every file under tests/golden/ must be tracked by git; the "
     "format-stability tests read fixtures from a fresh clone"},
    {"unguarded-inflate",
     "zlib_decompress is banned in src/core outside dpz.cpp; sections "
     "inflate only behind detail::get_section's CRC32C gate"},
    {"telemetry-dup",
     "span/counter/histogram display names in obs/names.h must be "
     "unique; duplicates merge silently in every JSON artifact"},
    {"telemetry-name",
     "telemetry name literals appear only in the obs/names.h registry; "
     "production code records through the interned enums"},
    {"status-exhaustive",
     "every StatusCode enumerator is mapped in status_code_name, the "
     "CLI exit_code_for switch, and the dpz_c.h status constants"},
    {"naked-mutex",
     "std::mutex/locks/condition_variable appear only inside "
     "util/annotated_mutex.h; everything else uses the capability-"
     "annotated wrappers"},
    {"raw-thread",
     "std::thread/std::async/.detach() appear only inside "
     "util/thread_pool.{h,cpp}; parallelism goes through the pool"},
    {"simd-isolated",
     "vector intrinsics (_mm*/__m*, NEON v*q_* and float{32,64}x*) "
     "appear only under src/simd/; everything else reaches them "
     "through the dispatched simd::kernels() table"},
};

namespace {

namespace fs = std::filesystem;

using FileMap = std::map<std::string, SourceFile>;

bool starts_with(const std::string& s, const char* prefix) {
  return s.rfind(prefix, 0) == 0;
}

void add(std::vector<Finding>* out, const char* check,
         const std::string& file, int line, std::string message) {
  out->push_back(Finding{check, file, line, std::move(message)});
}

// ---- rule 1: reinterpret_cast allowlist --------------------------------

void check_reinterpret_cast(const FileMap& files,
                            std::vector<Finding>* out) {
  // zlib_codec owns the byte-stream casts; fft.cpp/dct.cpp reinterpret
  // std::complex<double> arrays as interleaved doubles, which the
  // standard's array-oriented access guarantee sanctions (see the
  // comment atop fft.cpp).
  const std::set<std::string> allowlist = {
      "src/codec/zlib_codec.cpp", "src/dsp/fft.cpp", "src/dsp/dct.cpp"};
  for (const auto& [path, file] : files) {
    if (allowlist.count(path) != 0) continue;
    for (const Token& t : file.tokens)
      if (t.kind == TokKind::kIdent && t.text == "reinterpret_cast")
        add(out, "reinterpret-cast", path, t.line,
            "reinterpret_cast outside the allowlist; read archive "
            "bytes through ByteReader/BitReader instead");
  }
}

// ---- rule: SIMD intrinsics stay under src/simd/ ------------------------

// The dispatch design (docs/SIMD.md) funnels every vectorized primitive
// through simd::kernels(); an intrinsic anywhere else either bypasses
// the runtime CPU check (illegal-instruction risk on older hosts) or
// forks the sixteen-lane reduction contract. Matches the x86 vector
// vocabulary (_mm*/..., __m128/__m256/__m512 types), the NEON one
// (float64x2_t and the v...q_ intrinsic families), and the header names
// so an unused include is flagged too.
bool is_intrinsic_ident(const std::string& t) {
  if (t.rfind("_mm", 0) == 0) return true;    // _mm_, _mm256_, _mm512_
  if (t.rfind("__m128", 0) == 0 || t.rfind("__m256", 0) == 0 ||
      t.rfind("__m512", 0) == 0)
    return true;
  if (t == "immintrin" || t == "arm_neon") return true;
  if (t.rfind("float64x", 0) == 0 || t.rfind("float32x", 0) == 0)
    return true;
  static const char* const kNeonFamilies[] = {
      "vld1q", "vst1q", "vdupq", "vaddq", "vsubq", "vmulq",
      "vfmaq", "vfmsq", "vnegq", "vgetq", "vsetq", "vcombine",
      "vpaddq", "vaddvq"};
  for (const char* prefix : kNeonFamilies)
    if (t.rfind(prefix, 0) == 0) return true;
  return false;
}

void check_simd_isolated(const FileMap& files, std::vector<Finding>* out) {
  for (const auto& [path, file] : files) {
    if (starts_with(path, "src/simd/")) continue;
    for (const Token& t : file.tokens)
      if (t.kind == TokKind::kIdent && is_intrinsic_ident(t.text))
        add(out, "simd-isolated", path, t.line,
            "vector intrinsic '" + t.text +
                "' outside src/simd/; call through the dispatched "
                "simd::kernels() table instead");
  }
}

// ---- rule 2: raw memcpy near the decode path ---------------------------

void check_raw_memcpy(const FileMap& files, std::vector<Finding>* out) {
  for (const auto& [path, file] : files) {
    if (!starts_with(path, "src/core/") &&
        !starts_with(path, "src/codec/"))
      continue;
    if (path == "src/codec/bytes.h") continue;
    for (const Token& t : file.tokens)
      if (t.kind == TokKind::kIdent && t.text == "memcpy")
        add(out, "raw-memcpy", path, t.line,
            "memcpy in the decode path outside codec/bytes.h; use "
            "the checked ByteReader accessors");
  }
}

// ---- rule 3: DPZ_REQUIRE inside reader classes -------------------------

void check_require_in_reader(const FileMap& files,
                             std::vector<Finding>* out) {
  const struct {
    const char* path;
    const char* klass;
  } readers[] = {{"src/codec/bytes.h", "ByteReader"},
                 {"src/codec/bitstream.h", "BitReader"}};
  for (const auto& reader : readers) {
    const auto it = files.find(reader.path);
    if (it == files.end()) continue;
    const std::vector<Token>& toks = it->second.tokens;
    const std::optional<TokenRange> body =
        find_class_body(toks, reader.klass);
    if (!body) continue;
    for (std::size_t i = body->begin; i < body->end; ++i)
      if (toks[i].kind == TokKind::kIdent &&
          toks[i].text == "DPZ_REQUIRE")
        add(out, "require-in-reader", it->first, toks[i].line,
            std::string("DPZ_REQUIRE inside ") + reader.klass +
                "; readers must throw FormatError for malformed "
                "input (DPZ_REQUIRE is for caller contracts only)");
  }
}

// ---- rule 4: golden fixtures must be tracked ---------------------------

void check_golden_tracked(const std::string& root,
                          std::vector<Finding>* out) {
  if (!fs::is_directory(fs::path(root) / "tests" / "golden")) return;
  const std::string command =
      "git -C '" + root + "' ls-files --others tests/golden 2>/dev/null";
  FILE* pipe = ::popen(command.c_str(), "r");
  if (pipe == nullptr) return;
  std::string output;
  char buffer[512];
  while (std::fgets(buffer, sizeof buffer, pipe) != nullptr)
    output += buffer;
  if (::pclose(pipe) != 0) return;  // git unavailable: skip, not fail
  std::istringstream lines(output);
  std::string path;
  while (std::getline(lines, path))
    if (!path.empty())
      add(out, "golden-tracked", path, 1,
          "untracked file in tests/golden/ (git add -f it, or extend "
          "the .gitignore negation; the format-stability tests read "
          "fixtures from a fresh clone)");
}

// ---- rule 5: inflate only behind the checksum gate ---------------------

void check_unguarded_inflate(const FileMap& files,
                             std::vector<Finding>* out) {
  for (const auto& [path, file] : files) {
    if (!starts_with(path, "src/core/") || path == "src/core/dpz.cpp")
      continue;
    for (const Token& t : file.tokens)
      if (t.kind == TokKind::kIdent && t.text == "zlib_decompress")
        add(out, "unguarded-inflate", path, t.line,
            "zlib_decompress in src/core outside dpz.cpp; route "
            "section reads through detail::get_section so the CRC "
            "is verified before inflation");
  }
}

// ---- rule 6: telemetry names live only in obs/names.h ------------------

bool is_telemetry_name(const std::string& s) {
  if (s.empty()) return false;
  for (const char c : s)
    if (!((c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') || c == '_'))
      return false;
  return true;
}

// Display-name string tokens inside the brace initializer of variable
// `name`. In a nested aggregate ({"name", "category"} rows of
// kSpanInfo) only the first string of each inner group is the display
// name; trailing fields (categories) are a separate namespace and may
// repeat.
std::vector<const Token*> table_strings(const std::vector<Token>& toks,
                                        const std::string& name) {
  std::vector<const Token*> strings;
  for (std::size_t i = 0; i < toks.size(); ++i) {
    if (toks[i].kind != TokKind::kIdent || toks[i].text != name)
      continue;
    for (std::size_t j = i + 1; j < toks.size(); ++j) {
      if (toks[j].kind != TokKind::kPunct) continue;
      if (toks[j].text == ";") break;
      if (toks[j].text == "{") {
        const std::size_t close = match_brace(toks, j);
        if (close == std::string::npos) break;
        bool group_has_name = false;
        for (std::size_t k = j + 1; k < close; ++k) {
          if (toks[k].kind == TokKind::kPunct && toks[k].text == "{")
            group_has_name = false;
          if (toks[k].kind == TokKind::kString && !group_has_name) {
            strings.push_back(&toks[k]);
            group_has_name = true;
          }
        }
        return strings;
      }
    }
    break;
  }
  return strings;
}

void check_telemetry_names(const FileMap& files,
                           std::vector<Finding>* out) {
  const char* kRegistry = "src/obs/names.h";
  const auto it = files.find(kRegistry);
  if (it == files.end()) return;  // tree without telemetry: nothing to do

  std::set<std::string> names;
  std::size_t extracted = 0;
  for (const char* table :
       {"kSpanInfo", "kCounterNames", "kHistNames", "kEventNames"}) {
    for (const Token* t : table_strings(it->second.tokens, table)) {
      if (!is_telemetry_name(t->text)) continue;
      ++extracted;
      if (!names.insert(t->text).second)
        add(out, "telemetry-dup", kRegistry, t->line,
            "duplicate telemetry name \"" + t->text +
                "\" (every span/metric needs a distinct display "
                "name)");
    }
  }
  if (extracted == 0) {
    add(out, "telemetry-name", kRegistry, 1,
        "could not extract telemetry names from the registry tables "
        "(kSpanInfo/kCounterNames/kHistNames/kEventNames renamed?)");
    return;
  }
  for (const auto& [path, file] : files) {
    if (path == kRegistry) continue;
    for (const Token& t : file.tokens)
      if (t.kind == TokKind::kString && names.count(t.text) != 0)
        add(out, "telemetry-name", path, t.line,
            "telemetry name literal \"" + t.text +
                "\" outside obs/names.h; record through the obs "
                "enums (names are declared once in the registry)");
  }
}

// ---- status-exhaustive: StatusCode switch/table coverage ---------------

struct Enumerator {
  std::string name;
  long value = 0;
  int line = 0;
};

// Enumerators of `enum class <name>` with their (decimal) values.
std::vector<Enumerator> enum_values(const std::vector<Token>& toks,
                                    const std::string& name) {
  std::vector<Enumerator> values;
  const std::optional<TokenRange> body = find_enum_body(toks, name);
  if (!body) return values;
  long next = 0;
  bool expect_name = true;
  for (std::size_t i = body->begin; i < body->end; ++i) {
    const Token& t = toks[i];
    if (expect_name && t.kind == TokKind::kIdent) {
      long value = next;
      if (i + 2 < body->end && toks[i + 1].text == "=" &&
          toks[i + 2].kind == TokKind::kNumber)
        value = std::strtol(toks[i + 2].text.c_str(), nullptr, 0);
      values.push_back(Enumerator{t.text, value, t.line});
      next = value + 1;
      expect_name = false;
    } else if (t.kind == TokKind::kPunct && t.text == ",") {
      expect_name = true;
    }
  }
  return values;
}

// `case StatusCode::<name>` labels inside a token range.
std::set<std::string> case_labels(const std::vector<Token>& toks,
                                  const TokenRange& range) {
  std::set<std::string> labels;
  for (std::size_t i = range.begin; i + 3 < range.end; ++i)
    if (toks[i].kind == TokKind::kIdent && toks[i].text == "case" &&
        toks[i + 1].text == "StatusCode" && toks[i + 2].text == "::" &&
        toks[i + 3].kind == TokKind::kIdent)
      labels.insert(toks[i + 3].text);
  return labels;
}

void check_status_exhaustive(const FileMap& files,
                             std::vector<Finding>* out) {
  const char* kErrorH = "src/util/error.h";
  const char* kCliCpp = "src/tools/cli_app.cpp";
  const char* kCapiH = "src/capi/dpz_c.h";

  const auto error_it = files.find(kErrorH);
  if (error_it == files.end()) {
    add(out, "status-exhaustive", kErrorH, 1,
        "src/util/error.h not found; cannot enumerate StatusCode");
    return;
  }
  const std::vector<Token>& error_toks = error_it->second.tokens;
  const std::vector<Enumerator> codes =
      enum_values(error_toks, "StatusCode");
  if (codes.empty()) {
    add(out, "status-exhaustive", kErrorH, 1,
        "could not find enum class StatusCode in src/util/error.h");
    return;
  }

  // (1) status_code_name in error.h covers every enumerator.
  const std::optional<TokenRange> name_fn =
      find_function_body(error_toks, "status_code_name");
  if (!name_fn) {
    add(out, "status-exhaustive", kErrorH, 1,
        "no status_code_name(StatusCode) definition found");
  } else {
    const std::set<std::string> covered =
        case_labels(error_toks, *name_fn);
    for (const Enumerator& e : codes)
      if (covered.count(e.name) == 0)
        add(out, "status-exhaustive", kErrorH, e.line,
            "StatusCode::" + e.name +
                " has no case in status_code_name; every status "
                "needs a stable display name");
  }

  // (2) the CLI exit-code switch covers every enumerator.
  const auto cli_it = files.find(kCliCpp);
  if (cli_it == files.end()) {
    add(out, "status-exhaustive", kCliCpp, 1,
        "src/tools/cli_app.cpp not found; cannot check the CLI "
        "exit-code switch");
  } else {
    const std::vector<Token>& cli_toks = cli_it->second.tokens;
    const std::optional<TokenRange> exit_fn =
        find_function_body(cli_toks, "exit_code_for");
    if (!exit_fn) {
      add(out, "status-exhaustive", kCliCpp, 1,
          "no exit_code_for(StatusCode) switch found; CLI exit codes "
          "must be exhaustive over StatusCode");
    } else {
      const std::set<std::string> covered =
          case_labels(cli_toks, *exit_fn);
      const int fn_line = cli_toks[exit_fn->begin].line;
      for (const Enumerator& e : codes)
        if (covered.count(e.name) == 0)
          add(out, "status-exhaustive", kCliCpp, fn_line,
              "StatusCode::" + e.name +
                  " has no case in exit_code_for; a new status "
                  "needs an explicit CLI exit code");
    }
  }

  // (3) dpz_c.h mirrors every value with a DPZ_* constant, and has no
  // constants the C++ enum does not know.
  const auto capi_it = files.find(kCapiH);
  if (capi_it == files.end()) {
    add(out, "status-exhaustive", kCapiH, 1,
        "src/capi/dpz_c.h not found; cannot check the C status "
        "constants");
    return;
  }
  const std::vector<Token>& capi_toks = capi_it->second.tokens;
  std::map<long, Enumerator> c_constants;
  for (std::size_t i = 0; i + 2 < capi_toks.size(); ++i) {
    const Token& t = capi_toks[i];
    if (t.kind != TokKind::kIdent) continue;
    const bool is_status = t.text == "DPZ_OK" || t.text == "DPZ_PARTIAL" ||
                           starts_with(t.text, "DPZ_ERR_");
    if (!is_status) continue;
    if (capi_toks[i + 1].text != "=" ||
        capi_toks[i + 2].kind != TokKind::kNumber)
      continue;
    const long value =
        std::strtol(capi_toks[i + 2].text.c_str(), nullptr, 0);
    c_constants.emplace(value, Enumerator{t.text, value, t.line});
  }
  // Sentinels (trailing Count_ enumerators) have no C mirror; the
  // StatusCode enum has none today, but keep the rule future-proof.
  for (const Enumerator& e : codes) {
    if (e.name.size() > 1 && e.name.back() == '_') continue;
    if (c_constants.count(e.value) == 0)
      add(out, "status-exhaustive", kCapiH, 1,
          "StatusCode::" + e.name + " (value " +
              std::to_string(e.value) +
              ") has no DPZ_* status constant with that value in "
              "dpz_c.h");
  }
  for (const auto& [value, constant] : c_constants) {
    const bool known =
        std::any_of(codes.begin(), codes.end(), [v = value](
                                                    const Enumerator& e) {
          return e.value == v;
        });
    if (!known)
      add(out, "status-exhaustive", kCapiH, constant.line,
          constant.name + " (value " + std::to_string(value) +
              ") has no StatusCode enumerator with that value in "
              "util/error.h");
  }
}

// ---- naked-mutex / raw-thread: concurrency primitives ------------------

const std::set<std::string> kMutexIdents = {
    "mutex",          "timed_mutex",
    "recursive_mutex", "recursive_timed_mutex",
    "shared_mutex",   "shared_timed_mutex",
    "lock_guard",     "unique_lock",
    "scoped_lock",    "shared_lock",
    "condition_variable", "condition_variable_any",
};

const std::set<std::string> kThreadIdents = {"thread", "jthread", "async"};

void check_concurrency_primitives(const FileMap& files,
                                  std::vector<Finding>* out) {
  for (const auto& [path, file] : files) {
    const bool mutex_ok = path == "src/util/annotated_mutex.h";
    const bool thread_ok = path == "src/util/thread_pool.h" ||
                           path == "src/util/thread_pool.cpp";
    const std::vector<Token>& toks = file.tokens;
    for (std::size_t i = 0; i + 2 < toks.size(); ++i) {
      if (toks[i].kind == TokKind::kIdent && toks[i].text == "std" &&
          toks[i + 1].text == "::" &&
          toks[i + 2].kind == TokKind::kIdent) {
        const std::string& member = toks[i + 2].text;
        if (!mutex_ok && kMutexIdents.count(member) != 0)
          add(out, "naked-mutex", path, toks[i].line,
              "naked std::" + member +
                  " outside util/annotated_mutex.h; use the "
                  "capability-annotated Mutex/MutexLock/CondVar so "
                  "-Wthread-safety sees the lock");
        if (!thread_ok && kThreadIdents.count(member) != 0)
          add(out, "raw-thread", path, toks[i].line,
              "raw std::" + member +
                  " outside util/thread_pool; parallelism goes "
                  "through the deterministic pool");
      }
      if (!thread_ok && toks[i].kind == TokKind::kPunct &&
          toks[i].text == "." && toks[i + 1].text == "detach" &&
          toks[i + 2].text == "(")
        add(out, "raw-thread", path, toks[i].line,
            ".detach() outside util/thread_pool; detached threads "
            "outlive their pool and break the join contract");
    }
  }
}

}  // namespace

std::vector<Finding> run_checks(const Options& options,
                                std::string* fatal) {
  std::vector<Finding> findings;
  const fs::path root(options.root);
  const fs::path src = root / "src";
  std::error_code ec;
  if (!fs::is_directory(src, ec)) {
    *fatal = "no src/ directory under root '" + options.root + "'";
    return findings;
  }

  std::vector<fs::path> paths;
  for (auto it = fs::recursive_directory_iterator(src, ec);
       it != fs::recursive_directory_iterator(); ++it) {
    if (!it->is_regular_file()) continue;
    const std::string ext = it->path().extension().string();
    if (ext == ".h" || ext == ".hpp" || ext == ".cpp" || ext == ".cc")
      paths.push_back(it->path());
  }
  std::sort(paths.begin(), paths.end());

  FileMap files;
  for (const fs::path& path : paths) {
    std::ifstream in(path, std::ios::binary);
    if (!in) {
      *fatal = "cannot read " + path.string();
      return findings;
    }
    std::ostringstream text;
    text << in.rdbuf();
    std::string rel =
        fs::relative(path, root, ec).generic_string();
    if (ec) rel = path.generic_string();
    files.emplace(rel, lex(rel, text.str()));
  }

  check_reinterpret_cast(files, &findings);
  check_simd_isolated(files, &findings);
  check_raw_memcpy(files, &findings);
  check_require_in_reader(files, &findings);
  if (options.golden_check)
    check_golden_tracked(options.root, &findings);
  check_unguarded_inflate(files, &findings);
  check_telemetry_names(files, &findings);
  check_status_exhaustive(files, &findings);
  check_concurrency_primitives(files, &findings);

  std::sort(findings.begin(), findings.end(),
            [](const Finding& a, const Finding& b) {
              if (a.file != b.file) return a.file < b.file;
              if (a.line != b.line) return a.line < b.line;
              if (a.check != b.check) return a.check < b.check;
              return a.message < b.message;
            });
  return findings;
}

}  // namespace dpz::analyze
