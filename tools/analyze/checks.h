// dpz_analyze check registry and driver (docs/STATIC_ANALYSIS.md).
//
// Each check enforces one repo contract that generic tooling cannot
// express; tools/lint.sh rules 1-6 live here as structured checks, plus
// the concurrency- and enum-exhaustiveness contracts added with the
// thread-safety work. Checks are pure functions over the lexed tree —
// adding one means writing a function in checks.cpp, registering its
// name/description in kChecks, and planting a bad + clean fixture pair
// under tests/analyze_fixtures/.
#pragma once

#include <string>
#include <vector>

namespace dpz::analyze {

/// One diagnostic: `file:line: [check] message`.
struct Finding {
  std::string check;    // stable check name, e.g. "raw-memcpy"
  std::string file;     // root-relative path
  int line = 0;         // 1-based; 1 when the whole file is at fault
  std::string message;
};

struct CheckInfo {
  const char* name;
  const char* description;
};

/// Stable name + one-line contract of every check, for --list-checks
/// and the docs.
extern const std::vector<CheckInfo> kChecks;

struct Options {
  /// Repo root; checks scan <root>/src and (when present) consult
  /// git for <root>/tests/golden.
  std::string root;
  /// Disables the git-backed golden-tracked check (rule 4), e.g. for
  /// fixture trees that are not repositories of their own.
  bool golden_check = true;
};

/// Runs every check over <root>/src. Findings come back sorted by
/// (file, line, check). On an environment failure (unreadable root)
/// `fatal` is set and the findings are meaningless.
std::vector<Finding> run_checks(const Options& options,
                                std::string* fatal);

}  // namespace dpz::analyze
