#include "analyze/lexer.h"

#include <algorithm>

namespace dpz::analyze {

namespace {

bool is_ident_start(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_';
}
bool is_digit(char c) { return c >= '0' && c <= '9'; }
bool is_ident_char(char c) { return is_ident_start(c) || is_digit(c); }

bool is_raw_string_prefix(const std::string& word) {
  return word == "R" || word == "LR" || word == "uR" || word == "UR" ||
         word == "u8R";
}

}  // namespace

SourceFile lex(std::string path, const std::string& text) {
  SourceFile out;
  out.path = std::move(path);
  std::vector<Token>& toks = out.tokens;

  const std::size_t n = text.size();
  std::size_t i = 0;
  int line = 1;
  bool preproc = false;         // inside a # directive (may continue)
  bool line_has_code = false;   // non-whitespace seen on this line

  const auto push = [&](TokKind kind, std::string t, int ln) {
    toks.push_back(Token{kind, std::move(t), ln, preproc});
  };

  while (i < n) {
    const char c = text[i];
    if (c == '\n') {
      // A directive survives the newline only via backslash
      // continuation (the backslash is the last character).
      preproc = preproc && i > 0 && text[i - 1] == '\\';
      ++line;
      ++i;
      line_has_code = false;
      continue;
    }
    if (c == ' ' || c == '\t' || c == '\r' || c == '\f' || c == '\v') {
      ++i;
      continue;
    }
    if (c == '#' && !line_has_code) {
      preproc = true;
      line_has_code = true;
      ++i;
      continue;
    }
    line_has_code = true;

    // Comments.
    if (c == '/' && i + 1 < n && text[i + 1] == '/') {
      while (i < n && text[i] != '\n') ++i;
      continue;
    }
    if (c == '/' && i + 1 < n && text[i + 1] == '*') {
      i += 2;
      while (i + 1 < n && !(text[i] == '*' && text[i + 1] == '/')) {
        if (text[i] == '\n') ++line;
        ++i;
      }
      i = std::min(n, i + 2);
      continue;
    }

    // Identifiers (and raw-string prefixes).
    if (is_ident_start(c)) {
      const std::size_t start = i;
      while (i < n && is_ident_char(text[i])) ++i;
      std::string word = text.substr(start, i - start);
      if (i < n && text[i] == '"' && is_raw_string_prefix(word)) {
        ++i;  // opening quote
        const std::size_t delim_start = i;
        while (i < n && text[i] != '(') ++i;
        const std::string closer =
            ")" + text.substr(delim_start, i - delim_start) + "\"";
        if (i < n) ++i;  // opening paren
        const std::size_t body_start = i;
        std::size_t end = text.find(closer, i);
        if (end == std::string::npos) end = n;
        const int start_line = line;
        for (std::size_t j = body_start; j < end; ++j)
          if (text[j] == '\n') ++line;
        push(TokKind::kString, text.substr(body_start, end - body_start),
             start_line);
        i = end == n ? n : end + closer.size();
        continue;
      }
      push(TokKind::kIdent, std::move(word), line);
      continue;
    }

    // Numbers (pp-number shape, swallowing suffixes, digit separators,
    // and exponent signs).
    if (is_digit(c) ||
        (c == '.' && i + 1 < n && is_digit(text[i + 1]))) {
      const std::size_t start = i;
      ++i;
      while (i < n) {
        const char d = text[i];
        if (is_ident_char(d) || d == '.' || d == '\'') {
          ++i;
          continue;
        }
        const char prev = text[i - 1];
        if ((d == '+' || d == '-') &&
            (prev == 'e' || prev == 'E' || prev == 'p' || prev == 'P')) {
          ++i;
          continue;
        }
        break;
      }
      push(TokKind::kNumber, text.substr(start, i - start), line);
      continue;
    }

    // Ordinary string literal; contents kept with escapes intact.
    if (c == '"') {
      ++i;
      const int start_line = line;
      std::string value;
      while (i < n && text[i] != '"') {
        if (text[i] == '\\' && i + 1 < n) {
          value += text[i];
          value += text[i + 1];
          i += 2;
          continue;
        }
        if (text[i] == '\n') ++line;  // unterminated: tolerate
        value += text[i];
        ++i;
      }
      if (i < n) ++i;  // closing quote
      push(TokKind::kString, std::move(value), start_line);
      continue;
    }

    // Character literal.
    if (c == '\'') {
      ++i;
      const std::size_t start = i;
      const int start_line = line;
      while (i < n && text[i] != '\'' && text[i] != '\n') {
        if (text[i] == '\\' && i + 1 < n) ++i;
        ++i;
      }
      push(TokKind::kChar, text.substr(start, i - start), start_line);
      if (i < n && text[i] == '\'') ++i;
      continue;
    }

    // Punctuators: "::" fused (scope resolution is what the checks
    // match on), everything else one character.
    if (c == ':' && i + 1 < n && text[i + 1] == ':') {
      push(TokKind::kPunct, "::", line);
      i += 2;
      continue;
    }
    push(TokKind::kPunct, std::string(1, c), line);
    ++i;
  }
  return out;
}

std::size_t match_brace(const std::vector<Token>& toks, std::size_t open) {
  int depth = 0;
  for (std::size_t i = open; i < toks.size(); ++i) {
    if (toks[i].kind != TokKind::kPunct) continue;
    if (toks[i].text == "{") ++depth;
    if (toks[i].text == "}" && --depth == 0) return i;
  }
  return std::string::npos;
}

std::optional<TokenRange> find_class_body(const std::vector<Token>& toks,
                                          const std::string& name) {
  for (std::size_t i = 1; i < toks.size(); ++i) {
    if (toks[i].kind != TokKind::kIdent || toks[i].text != name) continue;
    const Token& prev = toks[i - 1];
    if (prev.kind != TokKind::kIdent ||
        (prev.text != "class" && prev.text != "struct"))
      continue;
    // Definition, not a forward declaration: a '{' must come before
    // any ';'.
    for (std::size_t j = i + 1; j < toks.size(); ++j) {
      if (toks[j].kind != TokKind::kPunct) continue;
      if (toks[j].text == ";") break;
      if (toks[j].text == "{") {
        const std::size_t close = match_brace(toks, j);
        if (close == std::string::npos) return std::nullopt;
        return TokenRange{j + 1, close};
      }
    }
  }
  return std::nullopt;
}

std::optional<TokenRange> find_enum_body(const std::vector<Token>& toks,
                                         const std::string& name) {
  for (std::size_t i = 1; i < toks.size(); ++i) {
    if (toks[i].kind != TokKind::kIdent || toks[i].text != name) continue;
    // `enum name`, `enum class name`, `enum struct name`.
    const bool scoped =
        toks[i - 1].kind == TokKind::kIdent &&
        (toks[i - 1].text == "class" || toks[i - 1].text == "struct");
    const std::size_t kw = scoped ? i - 2 : i - 1;
    if (kw >= toks.size() || toks[kw].kind != TokKind::kIdent ||
        toks[kw].text != "enum")
      continue;
    for (std::size_t j = i + 1; j < toks.size(); ++j) {
      if (toks[j].kind != TokKind::kPunct) continue;
      if (toks[j].text == ";") break;
      if (toks[j].text == "{") {
        const std::size_t close = match_brace(toks, j);
        if (close == std::string::npos) return std::nullopt;
        return TokenRange{j + 1, close};
      }
    }
  }
  return std::nullopt;
}

std::optional<TokenRange> find_function_body(
    const std::vector<Token>& toks, const std::string& name) {
  for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
    if (toks[i].kind != TokKind::kIdent || toks[i].text != name) continue;
    if (toks[i + 1].kind != TokKind::kPunct || toks[i + 1].text != "(")
      continue;
    // Skip the parameter list.
    int parens = 0;
    std::size_t j = i + 1;
    for (; j < toks.size(); ++j) {
      if (toks[j].kind != TokKind::kPunct) continue;
      if (toks[j].text == "(") ++parens;
      if (toks[j].text == ")" && --parens == 0) break;
    }
    if (j >= toks.size()) return std::nullopt;
    // Between ')' and '{' sit qualifiers (const, noexcept, trailing
    // return types); a ';' first means declaration or call — keep
    // scanning for a later definition.
    bool declaration = false;
    for (++j; j < toks.size(); ++j) {
      if (toks[j].kind != TokKind::kPunct) continue;
      if (toks[j].text == ";") {
        declaration = true;
        break;
      }
      if (toks[j].text == "{") {
        const std::size_t close = match_brace(toks, j);
        if (close == std::string::npos) return std::nullopt;
        return TokenRange{j + 1, close};
      }
    }
    if (declaration) continue;
  }
  return std::nullopt;
}

}  // namespace dpz::analyze
